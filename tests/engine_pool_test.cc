// Tests for the warm-run engine pool (src/nxe/engine_pool.h) and its session
// wiring (docs/warm_path.md): pooled sessions must produce bit-identical
// RunReports to fresh-engine sessions across every outcome class and the
// shard seam, pooled state must be safe under concurrent sessions sharing
// one pool (this suite runs under ThreadSanitizer in CI alongside the async
// suites), and the debug poison tripwire must actually catch stale use of
// checked-in state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/api/async.h"
#include "src/api/nvx.h"
#include "src/nxe/engine.h"
#include "src/nxe/engine_pool.h"
#include "src/support/thread_pool.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

using api::CompletionQueue;
using api::NvxBuilder;
using api::NvxOutcome;
using api::RunReport;

// ---------------------------------------------------------------------------
// Pooled sessions reproduce fresh-engine sessions bit-identically.
// ---------------------------------------------------------------------------

void ExpectReportsBitIdentical(const RunReport& pooled, const RunReport& fresh) {
  EXPECT_EQ(pooled.outcome, fresh.outcome);
  EXPECT_EQ(pooled.aborted_all, fresh.aborted_all);
  // Exact (not ULP-tolerant) floating-point equality: the pooled path reuses
  // buffers but must replay the identical computation.
  EXPECT_EQ(pooled.total_time, fresh.total_time);
  EXPECT_EQ(pooled.variant_finish_time, fresh.variant_finish_time);
  EXPECT_EQ(pooled.variant_compute_scale, fresh.variant_compute_scale);
  EXPECT_EQ(pooled.variant_standalone_time, fresh.variant_standalone_time);
  ASSERT_EQ(pooled.baseline_time.has_value(), fresh.baseline_time.has_value());
  if (fresh.baseline_time.has_value()) {
    EXPECT_EQ(*pooled.baseline_time, *fresh.baseline_time);
  }
  EXPECT_EQ(pooled.synced_syscalls, fresh.synced_syscalls);
  EXPECT_EQ(pooled.ignored_syscalls, fresh.ignored_syscalls);
  EXPECT_EQ(pooled.lockstep_barriers, fresh.lockstep_barriers);
  EXPECT_EQ(pooled.lock_acquisitions, fresh.lock_acquisitions);
  EXPECT_EQ(pooled.max_syscall_gap, fresh.max_syscall_gap);
  EXPECT_EQ(pooled.avg_syscall_gap, fresh.avg_syscall_gap);
  ASSERT_EQ(pooled.detection.has_value(), fresh.detection.has_value());
  if (fresh.detection.has_value()) {
    EXPECT_EQ(pooled.detection->variant, fresh.detection->variant);
    EXPECT_EQ(pooled.detection->thread, fresh.detection->thread);
    EXPECT_EQ(pooled.detection->detector, fresh.detection->detector);
  }
  ASSERT_EQ(pooled.divergence.has_value(), fresh.divergence.has_value());
  if (fresh.divergence.has_value()) {
    EXPECT_EQ(pooled.divergence->variant, fresh.divergence->variant);
    EXPECT_EQ(pooled.divergence->thread, fresh.divergence->thread);
    EXPECT_EQ(pooled.divergence->sync_index, fresh.divergence->sync_index);
    EXPECT_EQ(pooled.divergence->expected, fresh.divergence->expected);
    EXPECT_EQ(pooled.divergence->actual, fresh.divergence->actual);
  }
}

// Builds the configured session twice — engine pooling off and on — and
// requires every run of the pooled session (the first, cold, and two warm
// repeats that exercise reused arenas) to be bit-identical to the fresh one.
template <typename Configure>
void ExpectPooledEquivalence(Configure configure, const char* what) {
  NvxBuilder fresh_builder;
  configure(fresh_builder);
  auto fresh_session = fresh_builder.PooledEngines(false).Build();
  ASSERT_TRUE(fresh_session.ok()) << what << ": " << fresh_session.status().ToString();
  auto fresh = fresh_session->Run();
  ASSERT_TRUE(fresh.ok()) << what << ": " << fresh.status().ToString();

  NvxBuilder pooled_builder;
  configure(pooled_builder);
  auto pooled_session = pooled_builder.PooledEngines(true).Build();
  ASSERT_TRUE(pooled_session.ok()) << what << ": " << pooled_session.status().ToString();
  for (int repeat = 0; repeat < 3; ++repeat) {
    SCOPED_TRACE(std::string(what) + " pooled run " + std::to_string(repeat));
    auto pooled = pooled_session->Run();
    ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
    ExpectReportsBitIdentical(*pooled, *fresh);
  }
}

TEST(PooledEquivalenceTest, CleanRunMatchesFresh) {
  ExpectPooledEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0]).Variants(6).MeasureStandalone().Seed(11);
      },
      "identical/clean");
}

TEST(PooledEquivalenceTest, DetectionMatchesFresh) {
  ExpectPooledEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0])
            .Variants(6)
            .DistributeChecks(san::SanitizerId::kASan)
            .InjectDetection(3, "__asan_report_store")
            .Seed(17);
      },
      "check/detection");
}

TEST(PooledEquivalenceTest, DivergenceMatchesFresh) {
  ExpectPooledEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[2])
            .Variants(5)
            .InjectDivergence(3, "exfiltrated-secret")
            .Seed(23);
      },
      "identical/divergence");
}

TEST(PooledEquivalenceTest, ShardedSessionMatchesFresh) {
  // Shards share one pool per session: every shard backend checks out of it
  // and the merged report must still be bit-identical to the unpooled one.
  ExpectPooledEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[1])
            .Variants(5)
            .Lockstep(nxe::LockstepMode::kSelective)
            .Shards(2)
            .Seed(13);
      },
      "identical/sharded");
}

// ---------------------------------------------------------------------------
// One shared pool under 16 concurrent sessions on one CompletionQueue.
// ---------------------------------------------------------------------------

TEST(EnginePoolConcurrencyTest, SixteenSessionsShareOnePool) {
  constexpr size_t kSessions = 16;
  constexpr size_t kRunsPerSession = 4;

  // The reference verdict every concurrent run must reproduce.
  NvxBuilder reference_builder;
  reference_builder.Benchmark(workload::Spec2006()[0]).Variants(4).Seed(41);
  auto reference_session = reference_builder.PooledEngines(false).Build();
  ASSERT_TRUE(reference_session.ok());
  auto reference = reference_session->Run();
  ASSERT_TRUE(reference.ok());

  auto engine_pool = std::make_shared<nxe::EnginePool>();
  auto workers = std::make_shared<support::ThreadPool>(4);
  CompletionQueue done;

  std::vector<api::AsyncNvxSession> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    NvxBuilder builder;
    builder.Benchmark(workload::Spec2006()[0])
        .Variants(4)
        .Seed(41)
        .WithEnginePool(engine_pool);
    auto session = builder.BuildAsync(workers);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(*session));
  }
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t r = 0; r < kRunsPerSession; ++r) {
      sessions[s].Submit({}, &done, s * kRunsPerSession + r);
    }
  }
  for (size_t i = 0; i < kSessions * kRunsPerSession; ++i) {
    api::CompletionEvent event = done.Wait();
    ASSERT_TRUE(event.report.ok()) << event.report.status().ToString();
    ExpectReportsBitIdentical(*event.report, *reference);
  }

  const nxe::EnginePool::Stats stats = engine_pool->stats();
  EXPECT_EQ(stats.hits + stats.misses, kSessions * kRunsPerSession);
  EXPECT_GT(stats.hits, 0u);  // repeat runs genuinely reused pooled state
  EXPECT_EQ(stats.poison_violations, 0u);
  EXPECT_EQ(stats.keys, 1u);  // every session runs the same plan
  EXPECT_LE(stats.pooled_engines, 8u);  // default per-key bound held
}

// ---------------------------------------------------------------------------
// Debug poison tripwire.
// ---------------------------------------------------------------------------

TEST(EnginePoolPoisonTest, StaleCheckoutMutationIsCaught) {
#ifdef NDEBUG
  GTEST_SKIP() << "poison/verify compiles out in release builds";
#endif
  const workload::BenchmarkSpec& spec = *workload::FindBenchmark("perlbench");
  const auto variants = workload::BuildIdenticalVariants(spec, 2, 7);
  nxe::EngineConfig config;

  nxe::EnginePool pool;
  nxe::EngineWorkspace* stale = nullptr;
  {
    nxe::EnginePool::Checkout checkout = pool.Acquire("plan-key", config);
    ASSERT_TRUE(checkout.engine().Run(variants, &checkout.workspace()).ok());
    // A buggy caller holding the workspace past check-in.
    stale = &checkout.workspace();
  }
  // The entry is back in the pool, poisoned. Writing through the stale
  // reference scribbles live data over the poison pattern...
  stale->RecycleFinishBuffer(std::vector<double>(256, 1.0));

  // ...which the next checkout must detect: the tainted entry is rebuilt
  // (never served) and the violation is counted.
  nxe::EnginePool::Checkout again = pool.Acquire("plan-key", config);
  EXPECT_EQ(pool.stats().poison_violations, 1u);
  // The rebuilt state still runs correctly.
  EXPECT_TRUE(again.engine().Run(variants, &again.workspace()).ok());
}

TEST(EnginePoolPoisonTest, UntouchedCheckinPassesVerification) {
  const workload::BenchmarkSpec& spec = *workload::FindBenchmark("perlbench");
  const auto variants = workload::BuildIdenticalVariants(spec, 2, 7);
  nxe::EngineConfig config;

  nxe::EnginePool pool;
  {
    nxe::EnginePool::Checkout checkout = pool.Acquire("plan-key", config);
    ASSERT_TRUE(checkout.engine().Run(variants, &checkout.workspace()).ok());
  }
  nxe::EnginePool::Checkout again = pool.Acquire("plan-key", config);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().poison_violations, 0u);
}

// ---------------------------------------------------------------------------
// Pool bookkeeping: per-key bounds and LRU key eviction.
// ---------------------------------------------------------------------------

TEST(EnginePoolTest, BoundsAndLruEviction) {
  nxe::EngineConfig config;
  nxe::EnginePool pool(/*max_engines_per_key=*/1, /*max_keys=*/2);

  // Two concurrent checkouts of one key: the bucket holds one, the second
  // check-in is discarded.
  {
    nxe::EnginePool::Checkout a = pool.Acquire("alpha", config);
    nxe::EnginePool::Checkout b = pool.Acquire("alpha", config);
  }
  EXPECT_EQ(pool.stats().pooled_engines, 1u);
  EXPECT_EQ(pool.stats().discards, 1u);

  // Two more keys: "alpha" is least recently used and its entries go.
  { nxe::EnginePool::Checkout c = pool.Acquire("beta", config); }
  { nxe::EnginePool::Checkout d = pool.Acquire("gamma", config); }
  const nxe::EnginePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.keys, 2u);
  EXPECT_EQ(stats.misses, 4u);  // every distinct checkout built fresh state

  // "beta" and "gamma" survive; "alpha" rebuilds.
  { nxe::EnginePool::Checkout e = pool.Acquire("beta", config); }
  EXPECT_EQ(pool.stats().hits, 1u);
}

}  // namespace
}  // namespace bunshin
