// Parameterized property sweep over the engine: every supported benchmark x
// lockstep mode x variant count must complete without false positives, cost
// at least the baseline, and report consistent telemetry.
//
// Also the scheduler-equivalence suite: Engine::Run (event-driven) must
// produce bit-identical SyncReports — every field, including the
// floating-point clocks and gap averages — to Engine::RunReference (the
// retained round-based scheduler) on randomized traces sweeping thread
// counts, lockstep modes, ring capacities, and injected
// detections/divergences/malformed shapes.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <tuple>

#include "src/analysis/corpus.h"
#include "src/nxe/engine.h"
#include "src/workload/tracegen.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

class EngineSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, nxe::LockstepMode, size_t>> {};

TEST_P(EngineSweepTest, CompletesWithSaneReport) {
  const auto& [bench_name, mode, n_variants] = GetParam();
  const auto* spec = workload::FindBenchmark(bench_name);
  ASSERT_NE(spec, nullptr);

  nxe::EngineConfig config;
  config.mode = mode;
  config.cache_sensitivity = spec->cache_sensitivity;
  nxe::Engine engine(config);

  auto variants = workload::BuildIdenticalVariants(*spec, n_variants, 99);
  auto baseline_or = engine.RunBaseline(variants[0]);
  ASSERT_TRUE(baseline_or.ok()) << baseline_or.status().ToString();
  const double baseline = *baseline_or;
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // No false positives on identical binaries (§5.1).
  EXPECT_TRUE(report->completed);
  EXPECT_FALSE(report->divergence.has_value());
  EXPECT_FALSE(report->detection.has_value());

  // Timing sanity: synchronized execution is never faster than solo.
  EXPECT_GE(report->total_time, baseline);
  ASSERT_EQ(report->variant_finish_time.size(), n_variants);
  for (double t : report->variant_finish_time) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, report->total_time + 1e-9);
  }

  // Telemetry: every sync-relevant syscall of one variant was synchronized.
  size_t expected_syscalls = 0;
  for (const auto& thread : variants[0].threads) {
    for (const auto& action : thread.actions) {
      if (action.kind == nxe::ActionKind::kSyscall &&
          sc::IsSyncRelevant(action.syscall.no)) {
        ++expected_syscalls;
      }
    }
  }
  EXPECT_EQ(report->synced_syscalls, expected_syscalls);

  // Overhead stays within a loose global sanity bound (< 100% for any
  // configuration in this sweep).
  auto overhead = report->OverheadVs(baseline);
  ASSERT_TRUE(overhead.ok()) << overhead.status().ToString();
  EXPECT_LT(*overhead, 1.0);

  // Selective mode: the attack window is bounded by the ring.
  if (mode == nxe::LockstepMode::kSelective && n_variants > 1) {
    EXPECT_LE(report->max_syscall_gap, config.ring_capacity);
  }
}

std::vector<std::string> SweepBenchmarks() {
  return {"perlbench", "bzip2", "lbm", "xalancbmk", "barnes", "ocean(cp)", "dedup",
          "streamcluster"};
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweepTest,
    ::testing::Combine(::testing::ValuesIn(SweepBenchmarks()),
                       ::testing::Values(nxe::LockstepMode::kStrict,
                                         nxe::LockstepMode::kSelective),
                       ::testing::Values<size_t>(2, 3, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_" + nxe::LockstepModeName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param)) + "v";
    });

// --- Scheduler equivalence: Run() ≡ RunReference(), bit for bit -------------

// Bitwise double equality: the contract is "same arithmetic in the same
// order", not "close enough", so no epsilon anywhere.
bool BitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

::testing::AssertionResult ReportsBitIdentical(const StatusOr<nxe::SyncReport>& got,
                                               const StatusOr<nxe::SyncReport>& want) {
  if (got.ok() != want.ok()) {
    return ::testing::AssertionFailure()
           << "ok mismatch: Run=" << (got.ok() ? "report" : got.status().ToString())
           << " RunReference=" << (want.ok() ? "report" : want.status().ToString());
  }
  if (!got.ok()) {
    if (got.status().code() != want.status().code() ||
        got.status().message() != want.status().message()) {
      return ::testing::AssertionFailure() << "status mismatch: Run=" << got.status().ToString()
                                           << " RunReference=" << want.status().ToString();
    }
    return ::testing::AssertionSuccess();
  }
  const nxe::SyncReport& a = *got;
  const nxe::SyncReport& b = *want;
  if (a.completed != b.completed || a.aborted_all != b.aborted_all) {
    return ::testing::AssertionFailure() << "outcome flags differ";
  }
  if (a.divergence.has_value() != b.divergence.has_value()) {
    return ::testing::AssertionFailure() << "divergence presence differs";
  }
  if (a.divergence.has_value()) {
    if (a.divergence->variant != b.divergence->variant ||
        a.divergence->thread != b.divergence->thread ||
        a.divergence->sync_index != b.divergence->sync_index ||
        a.divergence->expected != b.divergence->expected ||
        a.divergence->actual != b.divergence->actual) {
      return ::testing::AssertionFailure()
             << "divergence differs: Run={v=" << a.divergence->variant
             << ",t=" << a.divergence->thread << ",k=" << a.divergence->sync_index
             << "} RunReference={v=" << b.divergence->variant << ",t=" << b.divergence->thread
             << ",k=" << b.divergence->sync_index << "}";
    }
  }
  if (a.detection.has_value() != b.detection.has_value()) {
    return ::testing::AssertionFailure() << "detection presence differs";
  }
  if (a.detection.has_value() &&
      (a.detection->variant != b.detection->variant ||
       a.detection->thread != b.detection->thread ||
       a.detection->detector != b.detection->detector)) {
    return ::testing::AssertionFailure()
           << "detection differs: Run={v=" << a.detection->variant << ",t=" << a.detection->thread
           << "} RunReference={v=" << b.detection->variant << ",t=" << b.detection->thread << "}";
  }
  if (a.variant_finish_time.size() != b.variant_finish_time.size()) {
    return ::testing::AssertionFailure() << "variant_finish_time size differs";
  }
  for (size_t v = 0; v < a.variant_finish_time.size(); ++v) {
    if (!BitEq(a.variant_finish_time[v], b.variant_finish_time[v])) {
      return ::testing::AssertionFailure()
             << "variant_finish_time[" << v << "] differs: " << a.variant_finish_time[v] << " vs "
             << b.variant_finish_time[v];
    }
  }
  if (!BitEq(a.total_time, b.total_time)) {
    return ::testing::AssertionFailure()
           << "total_time differs: " << a.total_time << " vs " << b.total_time;
  }
  if (a.synced_syscalls != b.synced_syscalls || a.ignored_syscalls != b.ignored_syscalls ||
      a.lockstep_barriers != b.lockstep_barriers || a.lock_acquisitions != b.lock_acquisitions) {
    return ::testing::AssertionFailure()
           << "counters differ: synced " << a.synced_syscalls << "/" << b.synced_syscalls
           << " ignored " << a.ignored_syscalls << "/" << b.ignored_syscalls << " lockstep "
           << a.lockstep_barriers << "/" << b.lockstep_barriers << " locks "
           << a.lock_acquisitions << "/" << b.lock_acquisitions;
  }
  if (a.max_syscall_gap != b.max_syscall_gap || !BitEq(a.avg_syscall_gap, b.avg_syscall_gap)) {
    return ::testing::AssertionFailure()
           << "gap metric differs: max " << a.max_syscall_gap << "/" << b.max_syscall_gap
           << " avg " << a.avg_syscall_gap << "/" << b.avg_syscall_gap;
  }
  return ::testing::AssertionSuccess();
}

// The seeded random-session generator lives in src/analysis/corpus.{h,cc}
// (shared with the analyzer oracle suite and tools/nvx_analyze --seeded);
// this suite consumes it through these aliases.
using analysis::GenerateCase;
using analysis::RandomCase;
using analysis::RandomRecord;

TEST(EngineEquivalenceTest, RandomizedTracesMatchReference) {
  size_t clean = 0, detections = 0, divergences = 0, errors = 0;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    RandomCase c = GenerateCase(seed);
    nxe::Engine engine(c.config);
    auto got = engine.Run(c.variants);
    auto want = engine.RunReference(c.variants);
    ASSERT_TRUE(ReportsBitIdentical(got, want))
        << "seed " << seed << " (" << c.label << ", " << c.variants.size() << " variants, "
        << c.variants[0].threads.size() << " threads, "
        << nxe::LockstepModeName(c.config.mode) << ", ring " << c.config.ring_capacity << ")";
    if (!got.ok()) {
      ++errors;
    } else if (got->detection.has_value()) {
      ++detections;
    } else if (got->divergence.has_value()) {
      ++divergences;
    } else {
      ++clean;
    }
  }
  // The generator must actually exercise every outcome class, or the sweep
  // proves nothing.
  EXPECT_GT(clean, 50u);
  EXPECT_GT(detections, 20u);
  EXPECT_GT(divergences, 20u);
  EXPECT_GT(errors, 5u);
}

TEST(EngineEquivalenceTest, PersistentWorkspaceMatchesReference) {
  // The warm-run path (docs/warm_path.md) reuses one EngineWorkspace across
  // runs. Threading a single workspace through all 400 heterogeneous cases —
  // every size transition, outcome class, and scheduler path back to back —
  // is the strongest stale-state probe: any buffer not fully reinitialized
  // between runs breaks bit-identity against the stateless reference.
  nxe::EngineWorkspace workspace;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    RandomCase c = GenerateCase(seed);
    nxe::Engine engine(c.config);
    auto got = engine.Run(c.variants, &workspace);
    auto want = engine.RunReference(c.variants);
    ASSERT_TRUE(ReportsBitIdentical(got, want))
        << "seed " << seed << " (" << c.label << ", " << c.variants.size() << " variants, "
        << c.variants[0].threads.size() << " threads, "
        << nxe::LockstepModeName(c.config.mode) << ", ring " << c.config.ring_capacity << ")";
  }
}

TEST(EngineEquivalenceTest, WorkloadTracesMatchReference) {
  for (const char* name : {"perlbench", "xalancbmk", "barnes", "dedup", "radiosity"}) {
    const auto* spec = workload::FindBenchmark(name);
    ASSERT_NE(spec, nullptr) << name;
    for (const auto mode : {nxe::LockstepMode::kStrict, nxe::LockstepMode::kSelective}) {
      for (const size_t n : {1u, 2u, 4u, 8u}) {
        nxe::EngineConfig config;
        config.mode = mode;
        config.cache_sensitivity = spec->cache_sensitivity;
        nxe::Engine engine(config);
        auto variants = workload::BuildIdenticalVariants(*spec, n, 1234);
        EXPECT_TRUE(ReportsBitIdentical(engine.Run(variants), engine.RunReference(variants)))
            << name << " " << nxe::LockstepModeName(mode) << " n=" << n;
      }
    }
  }
}

TEST(EngineEquivalenceTest, TinyRingBackPressureMatchesReference) {
  // The ring-full path (leader blocked on the slowest follower's fetch) and
  // the mixed lockstep/ring stream are where an event-driven scheduler can
  // drift; pin them at every tiny capacity.
  std::vector<nxe::ThreadAction> actions;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 30; ++i) {
    actions.push_back(nxe::ThreadAction::Compute(5.0 + static_cast<double>(rng() % 10)));
    actions.push_back(nxe::ThreadAction::Syscall(RandomRecord(rng, i % 5 == 4)));
  }
  actions.push_back(nxe::ThreadAction::Exit());
  for (const size_t ring : {1u, 2u, 3u, 5u}) {
    for (const size_t n : {2u, 3u, 6u}) {
      std::vector<nxe::VariantTrace> variants(n);
      for (size_t v = 0; v < n; ++v) {
        variants[v].name = "ring-v" + std::to_string(v);
        variants[v].compute_scale = 1.0 + 0.7 * static_cast<double>(v);
        variants[v].threads.resize(1);
        variants[v].threads[0].actions = actions;
      }
      nxe::EngineConfig config;
      config.mode = nxe::LockstepMode::kSelective;
      config.ring_capacity = ring;
      nxe::Engine engine(config);
      EXPECT_TRUE(ReportsBitIdentical(engine.Run(variants), engine.RunReference(variants)))
          << "ring " << ring << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace bunshin
