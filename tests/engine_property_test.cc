// Parameterized property sweep over the engine: every supported benchmark x
// lockstep mode x variant count must complete without false positives, cost
// at least the baseline, and report consistent telemetry.
#include <gtest/gtest.h>

#include <tuple>

#include "src/nxe/engine.h"
#include "src/workload/tracegen.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

class EngineSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, nxe::LockstepMode, size_t>> {};

TEST_P(EngineSweepTest, CompletesWithSaneReport) {
  const auto& [bench_name, mode, n_variants] = GetParam();
  const auto* spec = workload::FindBenchmark(bench_name);
  ASSERT_NE(spec, nullptr);

  nxe::EngineConfig config;
  config.mode = mode;
  config.cache_sensitivity = spec->cache_sensitivity;
  nxe::Engine engine(config);

  auto variants = workload::BuildIdenticalVariants(*spec, n_variants, 99);
  auto baseline_or = engine.RunBaseline(variants[0]);
  ASSERT_TRUE(baseline_or.ok()) << baseline_or.status().ToString();
  const double baseline = *baseline_or;
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // No false positives on identical binaries (§5.1).
  EXPECT_TRUE(report->completed);
  EXPECT_FALSE(report->divergence.has_value());
  EXPECT_FALSE(report->detection.has_value());

  // Timing sanity: synchronized execution is never faster than solo.
  EXPECT_GE(report->total_time, baseline);
  ASSERT_EQ(report->variant_finish_time.size(), n_variants);
  for (double t : report->variant_finish_time) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, report->total_time + 1e-9);
  }

  // Telemetry: every sync-relevant syscall of one variant was synchronized.
  size_t expected_syscalls = 0;
  for (const auto& thread : variants[0].threads) {
    for (const auto& action : thread.actions) {
      if (action.kind == nxe::ActionKind::kSyscall &&
          sc::IsSyncRelevant(action.syscall.no)) {
        ++expected_syscalls;
      }
    }
  }
  EXPECT_EQ(report->synced_syscalls, expected_syscalls);

  // Overhead stays within a loose global sanity bound (< 100% for any
  // configuration in this sweep).
  auto overhead = report->OverheadVs(baseline);
  ASSERT_TRUE(overhead.ok()) << overhead.status().ToString();
  EXPECT_LT(*overhead, 1.0);

  // Selective mode: the attack window is bounded by the ring.
  if (mode == nxe::LockstepMode::kSelective && n_variants > 1) {
    EXPECT_LE(report->max_syscall_gap, config.ring_capacity);
  }
}

std::vector<std::string> SweepBenchmarks() {
  return {"perlbench", "bzip2", "lbm", "xalancbmk", "barnes", "ocean(cp)", "dedup",
          "streamcluster"};
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweepTest,
    ::testing::Combine(::testing::ValuesIn(SweepBenchmarks()),
                       ::testing::Values(nxe::LockstepMode::kStrict,
                                         nxe::LockstepMode::kSelective),
                       ::testing::Values<size_t>(2, 3, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_" + nxe::LockstepModeName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param)) + "v";
    });

}  // namespace
}  // namespace bunshin
