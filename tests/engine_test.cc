// Tests for the N-version execution engine: synchronization semantics,
// divergence detection, sanitizer-syscall filtering, lockstep modes, weak
// determinism, and the cost model.
#include <gtest/gtest.h>

#include "src/nxe/engine.h"
#include "src/workload/tracegen.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

using nxe::ActionKind;
using nxe::Engine;
using nxe::EngineConfig;
using nxe::LockstepMode;
using nxe::ThreadAction;
using nxe::VariantTrace;

sc::SyscallRecord MakeWrite(const std::string& payload) {
  sc::SyscallRecord rec;
  rec.no = sc::Sysno::kWrite;
  rec.args = {1, static_cast<int64_t>(payload.size()), 0, 0, 0, 0};
  rec.payload_digest = sc::DigestString(payload);
  return rec;
}

sc::SyscallRecord MakeRead() {
  sc::SyscallRecord rec;
  rec.no = sc::Sysno::kRead;
  rec.args = {0, 128, 0, 0, 0, 0};
  return rec;
}

VariantTrace SimpleVariant(const std::string& name, double scale,
                           const std::vector<ThreadAction>& actions) {
  VariantTrace trace;
  trace.name = name;
  trace.compute_scale = scale;
  trace.threads.resize(1);
  trace.threads[0].actions = actions;
  trace.threads[0].actions.push_back(ThreadAction::Exit());
  return trace;
}

TEST(EngineTest, IdenticalVariantsComplete) {
  const std::vector<ThreadAction> actions = {
      ThreadAction::Compute(100), ThreadAction::Syscall(MakeRead()),
      ThreadAction::Compute(50), ThreadAction::Syscall(MakeWrite("hello"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, actions),
                                        SimpleVariant("b", 1.0, actions),
                                        SimpleVariant("c", 1.0, actions)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_FALSE(report->divergence.has_value());
  EXPECT_EQ(report->synced_syscalls, 2u);
}

TEST(EngineTest, ArgumentDivergenceDetected) {
  const std::vector<ThreadAction> good = {ThreadAction::Compute(10),
                                          ThreadAction::Syscall(MakeWrite("normal"))};
  const std::vector<ThreadAction> evil = {ThreadAction::Compute(10),
                                          ThreadAction::Syscall(MakeWrite("leaked-secret"))};
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 1.0, good),
                                        SimpleVariant("follower", 1.0, evil)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->divergence.has_value());
  EXPECT_EQ(report->divergence->variant, 1u);
  EXPECT_TRUE(report->aborted_all);
}

TEST(EngineTest, SequenceDivergenceDetected) {
  const std::vector<ThreadAction> two = {ThreadAction::Syscall(MakeRead()),
                                         ThreadAction::Syscall(MakeWrite("x"))};
  const std::vector<ThreadAction> one = {ThreadAction::Syscall(MakeRead())};
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 1.0, two),
                                        SimpleVariant("follower", 1.0, one)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->divergence.has_value());
}

TEST(EngineTest, DetectionAbortsAllVariants) {
  const std::vector<ThreadAction> protected_v = {ThreadAction::Compute(10),
                                                 ThreadAction::Detect("__asan_report_store")};
  const std::vector<ThreadAction> unprotected_v = {ThreadAction::Compute(10),
                                                   ThreadAction::Syscall(MakeWrite("pwned"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, protected_v),
                                        SimpleVariant("b", 1.0, unprotected_v)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->detection.has_value());
  EXPECT_EQ(report->detection->detector, "__asan_report_store");
  EXPECT_TRUE(report->aborted_all);
  EXPECT_FALSE(report->completed);
}

TEST(EngineTest, SanitizerMemoryManagementSyscallsIgnored) {
  // Variant b issues extra mmap/madvise (sanitizer metadata management);
  // no false alarm may result (§3.3).
  sc::SyscallRecord mmap_rec;
  mmap_rec.no = sc::Sysno::kMmap;
  mmap_rec.args = {0, 4096, 0, 0, 0, 0};
  const std::vector<ThreadAction> plain = {ThreadAction::Compute(10),
                                           ThreadAction::Syscall(MakeWrite("ok"))};
  const std::vector<ThreadAction> with_mm = {
      ThreadAction::Syscall(mmap_rec), ThreadAction::Compute(10),
      ThreadAction::Syscall(mmap_rec), ThreadAction::Syscall(MakeWrite("ok"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, plain),
                                        SimpleVariant("b", 1.2, with_mm)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->ignored_syscalls, 2u);
}

TEST(EngineTest, PreMainAndPostExitSyscallsIgnored) {
  const std::vector<ThreadAction> actions = {ThreadAction::Compute(10),
                                             ThreadAction::Syscall(MakeWrite("ok"))};
  std::vector<VariantTrace> variants = {SimpleVariant("asan", 1.5, actions),
                                        SimpleVariant("plain", 1.0, actions)};
  // The ASan variant reads /proc/self before main and writes a report at exit.
  variants[0].pre_main = {sc::ParseIntroducedSyscall("open:/proc/self/maps"),
                          sc::ParseIntroducedSyscall("read:/proc/self/maps")};
  variants[0].post_exit = {sc::ParseIntroducedSyscall("write:report")};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->ignored_syscalls, 3u);
}

TEST(EngineTest, SelectiveFasterThanStrict) {
  const auto& bench = workload::Spec2006()[0];  // perlbench: syscall-heavy
  auto variants = workload::BuildIdenticalVariants(bench, 3, 42);

  EngineConfig strict;
  strict.mode = LockstepMode::kStrict;
  strict.cache_sensitivity = bench.cache_sensitivity;
  EngineConfig selective = strict;
  selective.mode = LockstepMode::kSelective;

  Engine strict_engine(strict);
  Engine selective_engine(selective);
  auto strict_report = strict_engine.Run(variants);
  auto selective_report = selective_engine.Run(variants);
  ASSERT_TRUE(strict_report.ok());
  ASSERT_TRUE(selective_report.ok());
  EXPECT_TRUE(strict_report->completed);
  EXPECT_TRUE(selective_report->completed);
  EXPECT_LT(selective_report->total_time, strict_report->total_time);
}

TEST(EngineTest, OverheadGrowsWithVariantCount) {
  const auto& bench = workload::Spec2006()[1];  // bzip2
  Engine engine(EngineConfig{});
  const double baseline = *engine.RunBaseline(workload::BuildIdenticalVariants(bench, 1, 7)[0]);
  double prev_overhead = -1.0;
  for (size_t n : {2, 4, 8}) {
    EngineConfig config;
    config.cost.cores = 12;
    config.cache_sensitivity = bench.cache_sensitivity;
    Engine scaled(config);
    auto report = scaled.Run(workload::BuildIdenticalVariants(bench, n, 7));
    ASSERT_TRUE(report.ok());
    auto overhead_or = report->OverheadVs(baseline);
    ASSERT_TRUE(overhead_or.ok());
    const double overhead = *overhead_or;
    EXPECT_GT(overhead, prev_overhead) << "n=" << n;
    prev_overhead = overhead;
  }
}

TEST(EngineTest, SelectiveModeReportsSyscallGap) {
  const auto& bench = workload::Spec2006()[0];
  auto variants = workload::BuildIdenticalVariants(bench, 3, 11);
  EngineConfig config;
  config.mode = LockstepMode::kSelective;
  Engine engine(config);
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->max_syscall_gap, 0u);
  EXPECT_GE(report->avg_syscall_gap, 0.0);
  // Ring capacity bounds the gap.
  EXPECT_LE(report->max_syscall_gap, config.ring_capacity);
}

TEST(EngineTest, MultithreadedIdenticalVariantsComplete) {
  const auto& bench = workload::Splash2x()[0];  // barnes, 4 threads + locks
  auto variants = workload::BuildIdenticalVariants(bench, 3, 21);
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->lock_acquisitions, 0u);
}

TEST(EngineTest, MultithreadedOverheadIncludesLockOrdering) {
  const auto& mt = workload::Splash2x()[9];  // radiosity: lock heavy
  const auto& st = workload::Spec2006()[1];
  Engine engine(EngineConfig{});
  auto mt_variants = workload::BuildIdenticalVariants(mt, 3, 5);
  auto st_variants = workload::BuildIdenticalVariants(st, 3, 5);
  const double mt_base = *engine.RunBaseline(mt_variants[0]);
  const double st_base = *engine.RunBaseline(st_variants[0]);
  auto mt_report = engine.Run(mt_variants);
  auto st_report = engine.Run(st_variants);
  ASSERT_TRUE(mt_report.ok());
  ASSERT_TRUE(st_report.ok());
  ASSERT_TRUE(mt_report->completed);
  EXPECT_GT(*mt_report->OverheadVs(mt_base), *st_report->OverheadVs(st_base));
}

TEST(EngineTest, VariantFinishTimesTrackComputeScale) {
  const std::vector<ThreadAction> actions = {ThreadAction::Compute(1000),
                                             ThreadAction::Syscall(MakeWrite("done"))};
  std::vector<VariantTrace> variants = {SimpleVariant("slow", 2.0, actions),
                                        SimpleVariant("fast", 1.0, actions)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  // Strict lockstep: everyone finishes with the slowest (leader waits too).
  EXPECT_NEAR(report->variant_finish_time[0], report->variant_finish_time[1],
              report->total_time * 0.05);
}

TEST(EngineTest, RejectsEmptyAndMismatchedInput) {
  Engine engine(EngineConfig{});
  EXPECT_FALSE(engine.Run({}).ok());

  VariantTrace one_thread = SimpleVariant("a", 1.0, {});
  VariantTrace two_threads = SimpleVariant("b", 1.0, {});
  two_threads.threads.resize(2);
  EXPECT_FALSE(engine.Run({one_thread, two_threads}).ok());
}

TEST(EngineTest, SingleCoreSerializesCompute) {
  const auto& bench = workload::Spec2006()[1];
  auto variants = workload::BuildIdenticalVariants(bench, 2, 3);
  EngineConfig config;
  config.cost.cores = 1;
  Engine engine(config);
  const double baseline = *engine.RunBaseline(variants[0]);
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  // Roughly doubles: two variants time-share one core (§5.7: 103.1%).
  EXPECT_GT(*report->OverheadVs(baseline), 0.8);
}

TEST(EngineTest, LockstepConsumeTimesUseFollowerFetchClock) {
  // Regression: in the strict/IO lockstep path the follower's consume time
  // was recorded as the leader's done_time instead of the follower's actual
  // post-fetch clock (done_time + result_fetch + wakeup). In a selective run
  // that mixes IO-write lockstep syscalls, that skewed both the §5.3 gap
  // metric and the ring free time the next publish stalls on.
  EngineConfig config;
  config.mode = LockstepMode::kSelective;
  config.ring_capacity = 1;
  config.cost.wait_wakeup = 10.0;  // make the follower's wakeup clearly visible
  const nxe::CostModel& cm = config.cost;

  // Leader (scale 2) arrives last at the write, so the follower sleeps there
  // and fetches the result only at done_time + result_fetch + wakeup. The
  // leader's next (ring) syscall reuses the only slot and must stall until
  // that real fetch time.
  const std::vector<ThreadAction> actions = {
      ThreadAction::Compute(100), ThreadAction::Syscall(MakeWrite("w")),
      ThreadAction::Compute(0.1), ThreadAction::Syscall(MakeRead())};
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 2.0, actions),
                                        SimpleVariant("follower", 1.0, actions)};
  Engine engine(config);
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->completed);

  const double factor = cm.LlcMultiplier(2, config.cache_sensitivity);
  const double leader_arrival = 2.0 * 100 * factor + cm.trap_hook;
  const double done_time = leader_arrival + cm.sync_slot + cm.kernel_syscall;
  const double follower_fetch = done_time + cm.result_fetch + cm.WakeupCost();
  // The leader's ring publish stalls until the follower's real fetch time —
  // with the bug it restarted at done_time and finished well before this.
  EXPECT_GT(report->variant_finish_time[0], follower_fetch);
  const double expected_leader_finish =
      follower_fetch + cm.sync_slot + cm.kernel_syscall + cm.sync_slot + cm.WakeupCost();
  EXPECT_NEAR(report->variant_finish_time[0], expected_leader_finish, 1e-9);
  // At each publish instant the follower has not yet fetched that slot:
  // gap 1 at both syscalls. The bug counted the lockstep slot as already
  // consumed at its own publish time (gap 0 there, avg 0.5).
  EXPECT_NEAR(report->avg_syscall_gap, 1.0, 1e-9);
}

TEST(EngineTest, MalformedBarrierTraceConsistentAcrossRunAndBaseline) {
  // Thread 1 exits without ever reaching the barrier thread 0 waits at. Both
  // entry points must call this out as a malformed trace rather than
  // releasing a partial barrier (RunBaseline) or deadlocking (Run).
  VariantTrace trace;
  trace.name = "partial-barrier";
  trace.threads.resize(2);
  trace.threads[0].actions = {ThreadAction::Compute(10), ThreadAction::Barrier(0),
                              ThreadAction::Exit()};
  trace.threads[1].actions = {ThreadAction::Compute(5), ThreadAction::Exit()};

  Engine engine(EngineConfig{});
  auto baseline = engine.RunBaseline(trace);
  ASSERT_FALSE(baseline.ok());
  EXPECT_EQ(baseline.status().code(), StatusCode::kInvalidArgument);

  auto report = engine.Run({trace, trace});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ThreadMayExitAfterItsLastBarrier) {
  // Exiting is fine as long as no barrier is skipped: thread 1 finishes right
  // after the shared barrier while thread 0 keeps running and syncing.
  VariantTrace trace;
  trace.name = "early-exit";
  trace.threads.resize(2);
  trace.threads[0].actions = {ThreadAction::Barrier(0), ThreadAction::Compute(50),
                              ThreadAction::Syscall(MakeWrite("tail")), ThreadAction::Exit()};
  trace.threads[1].actions = {ThreadAction::Barrier(0), ThreadAction::Exit()};

  Engine engine(EngineConfig{});
  auto baseline = engine.RunBaseline(trace);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(*baseline, 0.0);
  auto report = engine.Run({trace, trace});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
}

TEST(EngineTest, BaselineDetectAbortsWholeProcess) {
  // A firing check kills the standalone process: time-to-abort is the
  // detecting thread's clock, whichever thread index carries the check; the
  // other thread's remaining work (and its pending barrier) never happens
  // and must not be billed or flagged as malformed.
  for (const size_t detect_thread : {0u, 1u}) {
    VariantTrace trace;
    trace.name = "standalone-detect";
    trace.threads.resize(2);
    trace.threads[detect_thread].actions = {ThreadAction::Compute(10),
                                            ThreadAction::Detect("__asan_report_store")};
    trace.threads[1 - detect_thread].actions = {
        ThreadAction::Compute(1000), ThreadAction::Barrier(0), ThreadAction::Exit()};
    Engine engine(EngineConfig{});
    auto baseline = engine.RunBaseline(trace);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_DOUBLE_EQ(*baseline, 10.0) << "detect in thread " << detect_thread;
  }
}

TEST(EngineTest, TinyRingThrottlesLeaderToFollowerPace) {
  // ring_capacity back-pressure: with a slow follower and a tiny ring the
  // leader stalls on each slot's free time and is held to the follower's
  // pace; with a ring larger than the stream it runs ahead unthrottled.
  std::vector<ThreadAction> actions;
  for (int i = 0; i < 20; ++i) {
    actions.push_back(ThreadAction::Compute(10));
    actions.push_back(ThreadAction::Syscall(MakeRead()));
  }
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 1.0, actions),
                                        SimpleVariant("slow-follower", 4.0, actions)};

  EngineConfig small;
  small.mode = LockstepMode::kSelective;
  small.ring_capacity = 2;
  EngineConfig big = small;
  big.ring_capacity = 64;

  auto small_report = Engine(small).Run(variants);
  auto big_report = Engine(big).Run(variants);
  ASSERT_TRUE(small_report.ok()) << small_report.status().ToString();
  ASSERT_TRUE(big_report.ok()) << big_report.status().ToString();
  EXPECT_TRUE(small_report->completed);
  EXPECT_TRUE(big_report->completed);

  // The ring bounds the attack window exactly; the big ring lets it grow.
  EXPECT_EQ(small_report->max_syscall_gap, 2u);
  EXPECT_GT(big_report->max_syscall_gap, 2u);
  EXPECT_LE(big_report->max_syscall_gap, big.ring_capacity);

  // free_time bookkeeping: the throttled leader finishes near the follower,
  // the unthrottled one far ahead of it.
  const double small_leader = small_report->variant_finish_time[0];
  const double small_follower = small_report->variant_finish_time[1];
  const double big_leader = big_report->variant_finish_time[0];
  const double big_follower = big_report->variant_finish_time[1];
  EXPECT_GT(small_leader, 1.5 * big_leader);
  EXPECT_GT(small_leader, 0.8 * small_follower);
  EXPECT_LT(big_leader, 0.5 * big_follower);
  // Back-pressure delays the leader, never the total (the follower is the
  // critical path in both runs).
  EXPECT_NEAR(small_follower, big_follower, 0.05 * big_follower);
}

TEST(EngineTest, SelectiveModeRejectsZeroRingCapacity) {
  const std::vector<ThreadAction> actions = {ThreadAction::Syscall(MakeRead())};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, actions),
                                        SimpleVariant("b", 1.0, actions)};
  EngineConfig config;
  config.mode = LockstepMode::kSelective;
  config.ring_capacity = 0;
  auto report = Engine(config).Run(variants);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  config.mode = LockstepMode::kStrict;  // strict mode never touches the ring
  EXPECT_TRUE(Engine(config).Run(variants).ok());
}

TEST(CostModelTest, LlcMultiplierMonotone) {
  nxe::CostModel cm;
  double prev = 0.0;
  for (size_t n = 1; n <= 8; ++n) {
    const double mult = cm.LlcMultiplier(n, 1.0);
    EXPECT_GE(mult, 1.0);
    EXPECT_GE(mult, prev);
    prev = mult;
  }
}

TEST(CostModelTest, LoadInflatesWakeups) {
  nxe::CostModel idle;
  idle.background_load = 0.02;
  nxe::CostModel busy;
  busy.background_load = 0.99;
  EXPECT_GT(busy.WakeupCost(), idle.WakeupCost());
}

}  // namespace
}  // namespace bunshin
