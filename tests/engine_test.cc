// Tests for the N-version execution engine: synchronization semantics,
// divergence detection, sanitizer-syscall filtering, lockstep modes, weak
// determinism, and the cost model.
#include <gtest/gtest.h>

#include "src/nxe/engine.h"
#include "src/workload/tracegen.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

using nxe::ActionKind;
using nxe::Engine;
using nxe::EngineConfig;
using nxe::LockstepMode;
using nxe::ThreadAction;
using nxe::VariantTrace;

sc::SyscallRecord MakeWrite(const std::string& payload) {
  sc::SyscallRecord rec;
  rec.no = sc::Sysno::kWrite;
  rec.args = {1, static_cast<int64_t>(payload.size()), 0, 0, 0, 0};
  rec.payload_digest = sc::DigestString(payload);
  return rec;
}

sc::SyscallRecord MakeRead() {
  sc::SyscallRecord rec;
  rec.no = sc::Sysno::kRead;
  rec.args = {0, 128, 0, 0, 0, 0};
  return rec;
}

VariantTrace SimpleVariant(const std::string& name, double scale,
                           const std::vector<ThreadAction>& actions) {
  VariantTrace trace;
  trace.name = name;
  trace.compute_scale = scale;
  trace.threads.resize(1);
  trace.threads[0].actions = actions;
  trace.threads[0].actions.push_back(ThreadAction::Exit());
  return trace;
}

TEST(EngineTest, IdenticalVariantsComplete) {
  const std::vector<ThreadAction> actions = {
      ThreadAction::Compute(100), ThreadAction::Syscall(MakeRead()),
      ThreadAction::Compute(50), ThreadAction::Syscall(MakeWrite("hello"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, actions),
                                        SimpleVariant("b", 1.0, actions),
                                        SimpleVariant("c", 1.0, actions)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_FALSE(report->divergence.has_value());
  EXPECT_EQ(report->synced_syscalls, 2u);
}

TEST(EngineTest, ArgumentDivergenceDetected) {
  const std::vector<ThreadAction> good = {ThreadAction::Compute(10),
                                          ThreadAction::Syscall(MakeWrite("normal"))};
  const std::vector<ThreadAction> evil = {ThreadAction::Compute(10),
                                          ThreadAction::Syscall(MakeWrite("leaked-secret"))};
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 1.0, good),
                                        SimpleVariant("follower", 1.0, evil)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->divergence.has_value());
  EXPECT_EQ(report->divergence->variant, 1u);
  EXPECT_TRUE(report->aborted_all);
}

TEST(EngineTest, SequenceDivergenceDetected) {
  const std::vector<ThreadAction> two = {ThreadAction::Syscall(MakeRead()),
                                         ThreadAction::Syscall(MakeWrite("x"))};
  const std::vector<ThreadAction> one = {ThreadAction::Syscall(MakeRead())};
  std::vector<VariantTrace> variants = {SimpleVariant("leader", 1.0, two),
                                        SimpleVariant("follower", 1.0, one)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->divergence.has_value());
}

TEST(EngineTest, DetectionAbortsAllVariants) {
  const std::vector<ThreadAction> protected_v = {ThreadAction::Compute(10),
                                                 ThreadAction::Detect("__asan_report_store")};
  const std::vector<ThreadAction> unprotected_v = {ThreadAction::Compute(10),
                                                   ThreadAction::Syscall(MakeWrite("pwned"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, protected_v),
                                        SimpleVariant("b", 1.0, unprotected_v)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->detection.has_value());
  EXPECT_EQ(report->detection->detector, "__asan_report_store");
  EXPECT_TRUE(report->aborted_all);
  EXPECT_FALSE(report->completed);
}

TEST(EngineTest, SanitizerMemoryManagementSyscallsIgnored) {
  // Variant b issues extra mmap/madvise (sanitizer metadata management);
  // no false alarm may result (§3.3).
  sc::SyscallRecord mmap_rec;
  mmap_rec.no = sc::Sysno::kMmap;
  mmap_rec.args = {0, 4096, 0, 0, 0, 0};
  const std::vector<ThreadAction> plain = {ThreadAction::Compute(10),
                                           ThreadAction::Syscall(MakeWrite("ok"))};
  const std::vector<ThreadAction> with_mm = {
      ThreadAction::Syscall(mmap_rec), ThreadAction::Compute(10),
      ThreadAction::Syscall(mmap_rec), ThreadAction::Syscall(MakeWrite("ok"))};
  std::vector<VariantTrace> variants = {SimpleVariant("a", 1.0, plain),
                                        SimpleVariant("b", 1.2, with_mm)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->ignored_syscalls, 2u);
}

TEST(EngineTest, PreMainAndPostExitSyscallsIgnored) {
  const std::vector<ThreadAction> actions = {ThreadAction::Compute(10),
                                             ThreadAction::Syscall(MakeWrite("ok"))};
  std::vector<VariantTrace> variants = {SimpleVariant("asan", 1.5, actions),
                                        SimpleVariant("plain", 1.0, actions)};
  // The ASan variant reads /proc/self before main and writes a report at exit.
  variants[0].pre_main = {sc::ParseIntroducedSyscall("open:/proc/self/maps"),
                          sc::ParseIntroducedSyscall("read:/proc/self/maps")};
  variants[0].post_exit = {sc::ParseIntroducedSyscall("write:report")};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->ignored_syscalls, 3u);
}

TEST(EngineTest, SelectiveFasterThanStrict) {
  const auto& bench = workload::Spec2006()[0];  // perlbench: syscall-heavy
  auto variants = workload::BuildIdenticalVariants(bench, 3, 42);

  EngineConfig strict;
  strict.mode = LockstepMode::kStrict;
  strict.cache_sensitivity = bench.cache_sensitivity;
  EngineConfig selective = strict;
  selective.mode = LockstepMode::kSelective;

  Engine strict_engine(strict);
  Engine selective_engine(selective);
  auto strict_report = strict_engine.Run(variants);
  auto selective_report = selective_engine.Run(variants);
  ASSERT_TRUE(strict_report.ok());
  ASSERT_TRUE(selective_report.ok());
  EXPECT_TRUE(strict_report->completed);
  EXPECT_TRUE(selective_report->completed);
  EXPECT_LT(selective_report->total_time, strict_report->total_time);
}

TEST(EngineTest, OverheadGrowsWithVariantCount) {
  const auto& bench = workload::Spec2006()[1];  // bzip2
  Engine engine(EngineConfig{});
  const double baseline = engine.RunBaseline(workload::BuildIdenticalVariants(bench, 1, 7)[0]);
  double prev_overhead = -1.0;
  for (size_t n : {2, 4, 8}) {
    EngineConfig config;
    config.cost.cores = 12;
    config.cache_sensitivity = bench.cache_sensitivity;
    Engine scaled(config);
    auto report = scaled.Run(workload::BuildIdenticalVariants(bench, n, 7));
    ASSERT_TRUE(report.ok());
    auto overhead_or = report->OverheadVs(baseline);
    ASSERT_TRUE(overhead_or.ok());
    const double overhead = *overhead_or;
    EXPECT_GT(overhead, prev_overhead) << "n=" << n;
    prev_overhead = overhead;
  }
}

TEST(EngineTest, SelectiveModeReportsSyscallGap) {
  const auto& bench = workload::Spec2006()[0];
  auto variants = workload::BuildIdenticalVariants(bench, 3, 11);
  EngineConfig config;
  config.mode = LockstepMode::kSelective;
  Engine engine(config);
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->max_syscall_gap, 0u);
  EXPECT_GE(report->avg_syscall_gap, 0.0);
  // Ring capacity bounds the gap.
  EXPECT_LE(report->max_syscall_gap, config.ring_capacity);
}

TEST(EngineTest, MultithreadedIdenticalVariantsComplete) {
  const auto& bench = workload::Splash2x()[0];  // barnes, 4 threads + locks
  auto variants = workload::BuildIdenticalVariants(bench, 3, 21);
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->lock_acquisitions, 0u);
}

TEST(EngineTest, MultithreadedOverheadIncludesLockOrdering) {
  const auto& mt = workload::Splash2x()[9];  // radiosity: lock heavy
  const auto& st = workload::Spec2006()[1];
  Engine engine(EngineConfig{});
  auto mt_variants = workload::BuildIdenticalVariants(mt, 3, 5);
  auto st_variants = workload::BuildIdenticalVariants(st, 3, 5);
  const double mt_base = engine.RunBaseline(mt_variants[0]);
  const double st_base = engine.RunBaseline(st_variants[0]);
  auto mt_report = engine.Run(mt_variants);
  auto st_report = engine.Run(st_variants);
  ASSERT_TRUE(mt_report.ok());
  ASSERT_TRUE(st_report.ok());
  ASSERT_TRUE(mt_report->completed);
  EXPECT_GT(*mt_report->OverheadVs(mt_base), *st_report->OverheadVs(st_base));
}

TEST(EngineTest, VariantFinishTimesTrackComputeScale) {
  const std::vector<ThreadAction> actions = {ThreadAction::Compute(1000),
                                             ThreadAction::Syscall(MakeWrite("done"))};
  std::vector<VariantTrace> variants = {SimpleVariant("slow", 2.0, actions),
                                        SimpleVariant("fast", 1.0, actions)};
  Engine engine(EngineConfig{});
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  // Strict lockstep: everyone finishes with the slowest (leader waits too).
  EXPECT_NEAR(report->variant_finish_time[0], report->variant_finish_time[1],
              report->total_time * 0.05);
}

TEST(EngineTest, RejectsEmptyAndMismatchedInput) {
  Engine engine(EngineConfig{});
  EXPECT_FALSE(engine.Run({}).ok());

  VariantTrace one_thread = SimpleVariant("a", 1.0, {});
  VariantTrace two_threads = SimpleVariant("b", 1.0, {});
  two_threads.threads.resize(2);
  EXPECT_FALSE(engine.Run({one_thread, two_threads}).ok());
}

TEST(EngineTest, SingleCoreSerializesCompute) {
  const auto& bench = workload::Spec2006()[1];
  auto variants = workload::BuildIdenticalVariants(bench, 2, 3);
  EngineConfig config;
  config.cost.cores = 1;
  Engine engine(config);
  const double baseline = engine.RunBaseline(variants[0]);
  auto report = engine.Run(variants);
  ASSERT_TRUE(report.ok());
  // Roughly doubles: two variants time-share one core (§5.7: 103.1%).
  EXPECT_GT(*report->OverheadVs(baseline), 0.8);
}

TEST(CostModelTest, LlcMultiplierMonotone) {
  nxe::CostModel cm;
  double prev = 0.0;
  for (size_t n = 1; n <= 8; ++n) {
    const double mult = cm.LlcMultiplier(n, 1.0);
    EXPECT_GE(mult, 1.0);
    EXPECT_GE(mult, prev);
    prev = mult;
  }
}

TEST(CostModelTest, LoadInflatesWakeups) {
  nxe::CostModel idle;
  idle.background_load = 0.02;
  nxe::CostModel busy;
  busy.background_load = 0.99;
  EXPECT_GT(busy.WakeupCost(), idle.WakeupCost());
}

}  // namespace
}  // namespace bunshin
