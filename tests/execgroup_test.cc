// Tests for execution groups (fork handling) and shared-memory sync.
#include <gtest/gtest.h>

#include "src/nxe/execgroup.h"
#include "src/nxe/shared_mem.h"

namespace bunshin {
namespace {

TEST(ExecGroupTest, RootGroupComplete) {
  nxe::ExecutionGroupManager mgr(100, {200, 300});
  EXPECT_TRUE(mgr.IsComplete(0));
  EXPECT_EQ(mgr.group_count(), 1u);
  EXPECT_EQ(*mgr.GroupOf(100), 0u);
  EXPECT_EQ(*mgr.GroupOf(300), 0u);
  EXPECT_FALSE(mgr.GroupOf(999).ok());
}

TEST(ExecGroupTest, LeaderForkCreatesIncompleteGroup) {
  nxe::ExecutionGroupManager mgr(100, {200, 300});
  auto egid = mgr.LeaderForked(0, 101);
  ASSERT_TRUE(egid.ok());
  EXPECT_FALSE(mgr.IsComplete(*egid));  // followers haven't forked yet
  const auto* group = mgr.Find(*egid);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->leader, 101u);
  EXPECT_EQ(group->parent, 0u);
}

TEST(ExecGroupTest, FollowerForksCompleteTheChildGroup) {
  nxe::ExecutionGroupManager mgr(100, {200, 300});
  auto egid = mgr.LeaderForked(0, 101);
  ASSERT_TRUE(egid.ok());
  EXPECT_TRUE(mgr.FollowerForked(0, 200, 201).ok());
  EXPECT_FALSE(mgr.IsComplete(*egid));
  EXPECT_TRUE(mgr.FollowerForked(0, 300, 301).ok());
  EXPECT_TRUE(mgr.IsComplete(*egid));
  // Children are members of the new group, not the parent.
  EXPECT_EQ(*mgr.GroupOf(201), *egid);
  EXPECT_EQ(*mgr.GroupOf(301), *egid);
}

TEST(ExecGroupTest, FollowerForkBeforeLeaderIsProtocolViolation) {
  nxe::ExecutionGroupManager mgr(100, {200});
  EXPECT_FALSE(mgr.FollowerForked(0, 200, 201).ok());
}

TEST(ExecGroupTest, MultipleForksMatchInOrder) {
  // Two leader forks, then follower forks fill the groups oldest-first —
  // forks are synchronized syscalls, so order correspondence is guaranteed.
  nxe::ExecutionGroupManager mgr(100, {200});
  auto g1 = mgr.LeaderForked(0, 101);
  auto g2 = mgr.LeaderForked(0, 102);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_TRUE(mgr.FollowerForked(0, 200, 201).ok());
  ASSERT_TRUE(mgr.FollowerForked(0, 200, 202).ok());
  EXPECT_EQ(*mgr.GroupOf(201), *g1);
  EXPECT_EQ(*mgr.GroupOf(202), *g2);
  EXPECT_TRUE(mgr.IsComplete(*g1));
  EXPECT_TRUE(mgr.IsComplete(*g2));
}

TEST(ExecGroupTest, NestedForksFromChildGroups) {
  // Daemon pattern: worker (child group) forks again.
  nxe::ExecutionGroupManager mgr(100, {200});
  auto worker = mgr.LeaderForked(0, 101);
  ASSERT_TRUE(mgr.FollowerForked(0, 200, 201).ok());
  auto grandchild = mgr.LeaderForked(*worker, 111);
  ASSERT_TRUE(grandchild.ok());
  ASSERT_TRUE(mgr.FollowerForked(*worker, 201, 211).ok());
  EXPECT_TRUE(mgr.IsComplete(*grandchild));
  EXPECT_EQ(mgr.Find(*grandchild)->parent, *worker);
}

TEST(ExecGroupTest, GroupRetiredWhenAllExit) {
  nxe::ExecutionGroupManager mgr(100, {200});
  auto egid = mgr.LeaderForked(0, 101);
  ASSERT_TRUE(mgr.FollowerForked(0, 200, 201).ok());
  EXPECT_EQ(mgr.group_count(), 2u);
  EXPECT_EQ(*mgr.ProcessExited(101), *egid);
  EXPECT_EQ(*mgr.ProcessExited(201), *egid);
  EXPECT_EQ(mgr.group_count(), 1u);
  EXPECT_EQ(mgr.Find(*egid), nullptr);
}

TEST(SharedMemTest, FirstTouchFaultsAndSyncsFromLeader) {
  nxe::SharedMapping mapping(256, /*n_followers=*/2);
  ASSERT_TRUE(mapping.Write(0, 10, 42).ok());  // leader writes
  EXPECT_EQ(mapping.fault_count(), 1u);        // leader's own first touch

  auto read = mapping.Read(1, 10);  // follower reads: faults, copies page
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 42);
  EXPECT_EQ(mapping.fault_count(), 2u);
}

TEST(SharedMemTest, UnpoisonedAccessDoesNotFault) {
  nxe::SharedMapping mapping(256, 1);
  (void)mapping.Read(1, 0);
  const uint64_t faults = mapping.fault_count();
  (void)mapping.Read(1, 1);  // same page, already faulted in
  EXPECT_EQ(mapping.fault_count(), faults);
  (void)mapping.Read(1, nxe::kPageWords);  // next page: faults again
  EXPECT_EQ(mapping.fault_count(), faults + 1);
}

TEST(SharedMemTest, MatchingFollowerWriteAccepted) {
  nxe::SharedMapping mapping(128, 1);
  ASSERT_TRUE(mapping.Write(0, 5, 7).ok());
  EXPECT_TRUE(mapping.Write(1, 5, 7).ok());  // same value: race-free agreement
  EXPECT_EQ(mapping.divergent_writes(), 0u);
}

TEST(SharedMemTest, DivergentFollowerWriteDetected) {
  nxe::SharedMapping mapping(128, 1);
  ASSERT_TRUE(mapping.Write(0, 5, 7).ok());
  EXPECT_FALSE(mapping.Write(1, 5, 999).ok());  // attacker-corrupted value
  EXPECT_EQ(mapping.divergent_writes(), 1u);
}

TEST(SharedMemTest, OutOfRangeRejected) {
  nxe::SharedMapping mapping(64, 1);
  EXPECT_FALSE(mapping.Read(0, 64).ok());
  EXPECT_FALSE(mapping.Write(0, 1000, 1).ok());
  EXPECT_FALSE(mapping.Read(5, 0).ok());  // no such variant
}

TEST(SharedMemTest, FollowerReFaultsAfterWriteEpisode) {
  nxe::SharedMapping mapping(128, 1);
  ASSERT_TRUE(mapping.Write(0, 3, 1).ok());
  ASSERT_TRUE(mapping.Write(1, 3, 1).ok());
  EXPECT_TRUE(mapping.IsPoisoned(1, 0));  // re-poisoned for the next episode

  // Leader updates; follower's next read observes it via a fresh fault.
  ASSERT_TRUE(mapping.Write(0, 3, 2).ok());
  auto read = mapping.Read(1, 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 2);
}

}  // namespace
}  // namespace bunshin
