// Unit tests for the IR core: builder, verifier, interpreter.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/ir.h"
#include "src/ir/verifier.h"
#include "tests/testutil.h"

namespace bunshin {
namespace {

TEST(IrTest, BufferProgramVerifies) {
  auto module = testutil::BuildBufferProgram();
  EXPECT_TRUE(ir::VerifyModule(*module).ok());
}

TEST(IrTest, BufferProgramComputes) {
  auto module = testutil::BuildBufferProgram();
  ir::Interpreter interp(module.get());
  for (int idx = 0; idx < 4; ++idx) {
    ir::ExecResult result = interp.Run("main", {idx});
    ASSERT_EQ(result.outcome, ir::Outcome::kReturned);
    EXPECT_EQ(result.return_value, idx * 10);
    ASSERT_EQ(result.events.size(), 1u);
    EXPECT_EQ(result.events[0].callee, "print");
    EXPECT_EQ(result.events[0].args[0], idx * 10);
  }
}

TEST(IrTest, OutOfBoundsReadIsSilentWithoutSanitizer) {
  // The memory error goes unnoticed, as in an unprotected C program.
  auto module = testutil::BuildBufferProgram();
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {4});
  EXPECT_EQ(result.outcome, ir::Outcome::kReturned);
}

TEST(IrTest, DivByZeroTraps) {
  auto module = testutil::BuildArithProgram();
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {10, 0});
  EXPECT_EQ(result.outcome, ir::Outcome::kTrapped);
  EXPECT_NE(result.trap_reason.find("division by zero"), std::string::npos);
}

TEST(IrTest, MultiFunctionProgramComputes) {
  auto module = testutil::BuildMultiFunctionProgram();
  ASSERT_TRUE(ir::VerifyModule(*module).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {5});
  ASSERT_EQ(result.outcome, ir::Outcome::kReturned);
  // hot(5) = 0+1+4+9+16 = 30; warm(5) = 5 + 15 + 20 = 20... buf[2] = 5+15;
  // cold(5) = 5. Total = 30 + 20 + 5 = 55.
  EXPECT_EQ(result.return_value, 55);
  EXPECT_GT(result.per_function_steps.at("hot"), result.per_function_steps.at("cold"));
}

TEST(IrTest, PerFunctionCostsAccumulate) {
  auto module = testutil::BuildMultiFunctionProgram();
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {50});
  ASSERT_EQ(result.outcome, ir::Outcome::kReturned);
  uint64_t sum = 0;
  for (const auto& [fn, cost] : result.per_function_cost) {
    sum += cost;
  }
  EXPECT_EQ(sum, result.cost);
}

TEST(IrTest, FuelLimitStopsRunawayLoops) {
  auto module = std::make_unique<ir::Module>();
  ir::Function* fn = module->AddFunction("main", 0);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  b.Br(entry);  // infinite loop
  ir::Interpreter interp(module.get());
  interp.set_fuel(1000);
  ir::ExecResult result = interp.Run("main", {});
  EXPECT_EQ(result.outcome, ir::Outcome::kOutOfFuel);
}

TEST(IrTest, PhiSelectsByPredecessor) {
  auto module = std::make_unique<ir::Module>();
  ir::Function* fn = module->AddFunction("main", 1);
  const ir::BlockId entry = fn->AddBlock("entry");
  const ir::BlockId left = fn->AddBlock("left");
  const ir::BlockId right = fn->AddBlock("right");
  const ir::BlockId join = fn->AddBlock("join");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  const ir::Value cond = b.Cmp(ir::CmpPred::kGt, ir::Value::Arg(0), ir::Value::Const(0));
  b.CondBr(cond, left, right);
  b.SetInsertPoint(left);
  b.Br(join);
  b.SetInsertPoint(right);
  b.Br(join);
  b.SetInsertPoint(join);
  const ir::Value phi = b.Phi({{left, ir::Value::Const(111)}, {right, ir::Value::Const(222)}});
  b.Ret(phi);
  ASSERT_TRUE(ir::VerifyModule(*module).ok());

  ir::Interpreter interp(module.get());
  EXPECT_EQ(interp.Run("main", {5}).return_value, 111);
  EXPECT_EQ(interp.Run("main", {-5}).return_value, 222);
}

TEST(IrTest, VerifierCatchesMissingTerminator) {
  ir::Module module;
  ir::Function* fn = module.AddFunction("broken", 0);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  b.Add(ir::Value::Const(1), ir::Value::Const(2));  // no terminator
  EXPECT_FALSE(ir::VerifyModule(module).ok());
}

TEST(IrTest, VerifierCatchesBadBranchTarget) {
  ir::Module module;
  ir::Function* fn = module.AddFunction("broken", 0);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  b.Br(99);
  EXPECT_FALSE(ir::VerifyModule(module).ok());
}

TEST(IrTest, VerifierCatchesUndefinedValueUse) {
  ir::Module module;
  ir::Function* fn = module.AddFunction("broken", 0);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  b.Ret(ir::Value::Inst(4242));
  EXPECT_FALSE(ir::VerifyModule(module).ok());
}

TEST(IrTest, CloneIsDeepAndIdentical) {
  auto module = testutil::BuildMultiFunctionProgram();
  auto clone = module->Clone();
  EXPECT_EQ(module->ToString(), clone->ToString());
  // Mutating the clone must not affect the original.
  clone->GetFunction("main")->mutable_blocks()[0].insts.clear();
  EXPECT_NE(module->ToString(), clone->ToString());
}

TEST(IrTest, MemsetIntrinsicWritesMemoryWithoutEvents) {
  ir::Module module;
  ir::Function* fn = module.AddFunction("main", 0);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  const ir::Value buf = b.Alloca(ir::Value::Const(4));
  b.Call("__intrin_memset", {buf, ir::Value::Const(4), ir::Value::Const(9)});
  const ir::Value v = b.Load(b.Add(buf, ir::Value::Const(2)));
  b.Ret(v);
  ir::Interpreter interp(&module);
  ir::ExecResult result = interp.Run("main", {});
  ASSERT_EQ(result.outcome, ir::Outcome::kReturned);
  EXPECT_EQ(result.return_value, 9);
  EXPECT_TRUE(result.events.empty());
}

}  // namespace
}  // namespace bunshin
