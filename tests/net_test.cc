// Tests for the multi-host execution plane (src/net/): wire-format framing
// and codecs, PartialReport decode validation, the executor daemon's serve
// loop and plan cache, and the RemoteBackend dispatcher — including the
// acceptance property that Remote(loopback fleet) produces merged reports
// bit-identical to Shards(k) and to the unsharded session, and that every
// injected fault (dead executor, kill mid-run, black-hole timeout, truncated
// frame, version mismatch) terminates with a definite Status. This suite
// runs under ThreadSanitizer and AddressSanitizer in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/nvx.h"
#include "src/net/endpoint.h"
#include "src/net/executor.h"
#include "src/net/remote.h"
#include "src/net/wire.h"
#include "src/support/socket.h"

namespace bunshin {
namespace {

using api::NvxBuilder;
using api::NvxOutcome;
using api::PartialReport;
using api::RunReport;
using net::Endpoint;
using net::ExecutorServer;
using net::Frame;
using net::MessageType;
using net::RemoteOptions;
using net::WireReader;
using net::WireWriter;

// ---------------------------------------------------------------------------
// Wire primitives.
// ---------------------------------------------------------------------------

TEST(WireTest, PrimitiveRoundTrip) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.141592653589793);
  w.Bool(true);
  w.Str("hello");
  w.Str("");

  WireReader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.141592653589793);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.status().ok());
}

TEST(WireTest, DoubleRoundTripIsBitExact) {
  // Bit-cast encoding: NaN payloads and signed zero survive exactly.
  const double values[] = {0.0, -0.0, 1e-300, -1e300, std::nan("0x42"),
                           std::numeric_limits<double>::infinity()};
  for (double v : values) {
    WireWriter w;
    w.F64(v);
    WireReader r(w.buffer());
    const double back = r.F64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0);
  }
}

TEST(WireTest, ReaderIsStickyOnTruncation) {
  WireWriter w;
  w.U32(7);
  WireReader r(w.buffer());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero value, error latched
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.U8(), 0u);  // sticky
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, StringLengthValidatedBeforeAllocation) {
  WireWriter w;
  w.U32(0xFFFFFFFF);  // claims a 4GB string with no bytes behind it
  WireReader r(w.buffer());
  r.Str();
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, CountGuardsAgainstHugeElementCounts) {
  WireWriter w;
  w.U32(1u << 30);  // a billion 8-byte elements in an empty buffer
  WireReader r(w.buffer());
  EXPECT_EQ(r.Count(8), 0u);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripOverLoopbackSocket) {
  auto [a, b] = support::LoopbackSocketPair();
  Frame frame;
  frame.type = MessageType::kRunRequest;
  frame.request_id = 77;
  frame.payload = "payload-bytes";
  ASSERT_TRUE(net::WriteFrame(*a, frame).ok());
  auto got = net::ReadFrame(*b);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->type, MessageType::kRunRequest);
  EXPECT_EQ(got->request_id, 77u);
  EXPECT_EQ(got->payload, "payload-bytes");
}

TEST(FrameTest, BadMagicIsDefiniteError) {
  std::string bytes = net::EncodeFrame(Frame{MessageType::kPing, 1, ""});
  bytes[0] ^= 0xFF;
  auto decoded = net::DecodeFrameBuffer(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, VersionMismatchIsFailedPrecondition) {
  std::string bytes = net::EncodeFrame(Frame{MessageType::kPing, 1, ""});
  bytes[4] = static_cast<char>(net::kWireVersion + 1);  // version field
  bytes[5] = 0;  // (little-endian u16 after the u32 magic)
  auto decoded = net::DecodeFrameBuffer(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FrameTest, OversizePayloadLengthRejectedBeforeAllocation) {
  WireWriter w;
  w.U32(net::kWireMagic);
  w.U16(net::kWireVersion);
  w.U16(static_cast<uint16_t>(MessageType::kPing));
  w.U64(1);
  w.U64(net::kMaxFramePayload + 1);
  auto [a, b] = support::LoopbackSocketPair();
  ASSERT_TRUE(a->SendAll(w.buffer().data(), w.buffer().size()).ok());
  auto decoded = net::ReadFrame(*b);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, TruncatedBufferRejected) {
  const std::string bytes = net::EncodeFrame(Frame{MessageType::kPong, 3, "abcdef"});
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = net::DecodeFrameBuffer(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// Plan codec.
// ---------------------------------------------------------------------------

api::VariantPlan PlanFixture() {
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0])
      .Variants(5)
      .DistributeChecks(san::SanitizerId::kASan)
      .InjectDetection(2, "__asan_report_store")
      .InjectDivergence(3, "tampered")
      .Seed(97)
      .MeasureStandalone();
  auto plan = builder.PlanVariants();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(PlanCodecTest, RoundTripPreservesBytesAndCacheKey) {
  const api::VariantPlan plan = PlanFixture();
  const std::string bytes = net::EncodeVariantPlan(plan);
  auto decoded = net::DecodeVariantPlan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Re-encode equality implies field-level equality (the codec writes every
  // field), and CacheKey equality is what the executor's cache checks.
  EXPECT_EQ(net::EncodeVariantPlan(*decoded), bytes);
  EXPECT_EQ(decoded->CacheKey(), plan.CacheKey());
  EXPECT_EQ(decoded->n_variants(), plan.n_variants());
}

TEST(PlanCodecTest, TrailingBytesRejected) {
  std::string bytes = net::EncodeVariantPlan(PlanFixture());
  bytes += '\0';
  auto decoded = net::DecodeVariantPlan(bytes);
  ASSERT_FALSE(decoded.ok());
}

TEST(PlanCodecTest, InvalidEnumRejected) {
  api::VariantPlan plan = PlanFixture();
  std::string bytes = net::EncodeVariantPlan(plan);
  // The strategy byte follows the optional benchmark and absent server. Flip
  // it far out of range; decode must fail, not produce a garbage enum.
  const std::string clean = net::EncodeVariantPlan(plan);
  bool rejected_any = false;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = clean;
    corrupt[i] = static_cast<char>(0xEE);
    auto decoded = net::DecodeVariantPlan(corrupt);
    if (!decoded.ok()) {
      rejected_any = true;
    }
  }
  EXPECT_TRUE(rejected_any);
}

// ---------------------------------------------------------------------------
// PartialReport validation: a corrupt wire report cannot reach Merge.
// ---------------------------------------------------------------------------

PartialReport ValidPartial() {
  PartialReport partial;
  partial.variant_index = {0, 2};
  partial.owns_baseline = true;
  partial.report.backend = "trace";
  partial.report.outcome = NvxOutcome::kOk;
  partial.report.total_time = 10.0;
  partial.report.variant_finish_time = {9.0, 10.0};
  partial.report.variant_compute_scale = {1.0, 1.5};
  return partial;
}

TEST(PartialValidationTest, ValidPartialRoundTrips) {
  const PartialReport partial = ValidPartial();
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->variant_index, partial.variant_index);
  EXPECT_TRUE(decoded->owns_baseline);
  EXPECT_EQ(decoded->report.variant_finish_time, partial.report.variant_finish_time);
}

TEST(PartialValidationTest, OutOfRangeSlotRejected) {
  PartialReport partial = ValidPartial();
  partial.variant_index = {0, 7};  // session has 3 variants
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartialValidationTest, DuplicateSlotRejected) {
  PartialReport partial = ValidPartial();
  partial.variant_index = {0, 0};
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_FALSE(decoded.ok());
}

TEST(PartialValidationTest, LengthMismatchRejected) {
  PartialReport partial = ValidPartial();
  partial.report.variant_finish_time.push_back(11.0);  // 3 times, 2 slots
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_FALSE(decoded.ok());
}

TEST(PartialValidationTest, DetectionWithoutAttributionRejected) {
  PartialReport partial = ValidPartial();
  partial.report.outcome = NvxOutcome::kDetected;  // no detection payload
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_FALSE(decoded.ok());
}

TEST(PartialValidationTest, DetectionOutsideCoverageRejected) {
  PartialReport partial = ValidPartial();
  partial.report.outcome = NvxOutcome::kDetected;
  partial.report.detection = api::Detection{5, 0, "__asan_report_load"};  // 2 local slots
  auto decoded = net::DecodePartialReport(net::EncodePartialReport(partial), 3);
  ASSERT_FALSE(decoded.ok());
}

TEST(PartialValidationTest, OkReplyWithoutPartialRejected) {
  net::RunReplyMsg reply;
  reply.run_status = Status::Ok();  // claims success but carries no partial
  auto decoded = net::DecodeRunReplyMsg(net::EncodeRunReplyMsg(reply), 3);
  ASSERT_FALSE(decoded.ok());
}

// ---------------------------------------------------------------------------
// Shard member groups: one rule for both dispatchers.
// ---------------------------------------------------------------------------

TEST(ShardGroupsTest, RoundRobinWithLeaderReplicas) {
  const auto groups = api::ShardMemberGroups(6, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1, 3, 5}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{0, 2, 4}));
}

TEST(ShardGroupsTest, EmptyGroupsDropped) {
  const auto groups = api::ShardMemberGroups(2, 4);  // one follower, 4 shards
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1}));
}

TEST(TraceBackendFactoryTest, RejectsBadMemberLists) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  EXPECT_FALSE(api::MakeTraceBackend(plan, {}, true).ok());
  EXPECT_FALSE(api::MakeTraceBackend(plan, {1, 0}, true).ok());      // leader not first
  EXPECT_FALSE(api::MakeTraceBackend(plan, {0, 99}, true).ok());     // out of range
  EXPECT_FALSE(api::MakeTraceBackend(plan, {0, 1, 1}, true).ok());   // duplicate
  EXPECT_TRUE(api::MakeTraceBackend(plan, {0, 1, 3}, false).ok());
}

// ---------------------------------------------------------------------------
// Remote ≡ Shards(k) ≡ unsharded over a loopback executor fleet.
// ---------------------------------------------------------------------------

std::vector<Endpoint> LoopbackFleet(const std::vector<std::shared_ptr<ExecutorServer>>& fleet) {
  std::vector<Endpoint> endpoints;
  for (size_t i = 0; i < fleet.size(); ++i) {
    endpoints.push_back(net::LoopbackEndpoint(fleet[i], "loopback-" + std::to_string(i)));
  }
  return endpoints;
}

// All-field equality: the bit-identity acceptance criterion. Doubles compare
// with == (not near): the wire encodes them bit-cast, the engine is
// deterministic, so any difference is a real divergence of the planes.
void ExpectReportsIdentical(const RunReport& a, const RunReport& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.aborted_all, b.aborted_all);
  ASSERT_EQ(a.detection.has_value(), b.detection.has_value());
  if (a.detection.has_value()) {
    EXPECT_EQ(a.detection->variant, b.detection->variant);
    EXPECT_EQ(a.detection->thread, b.detection->thread);
    EXPECT_EQ(a.detection->detector, b.detection->detector);
  }
  ASSERT_EQ(a.divergence.has_value(), b.divergence.has_value());
  if (a.divergence.has_value()) {
    EXPECT_EQ(a.divergence->variant, b.divergence->variant);
    EXPECT_EQ(a.divergence->thread, b.divergence->thread);
    EXPECT_EQ(a.divergence->sync_index, b.divergence->sync_index);
    EXPECT_EQ(a.divergence->expected, b.divergence->expected);
    EXPECT_EQ(a.divergence->actual, b.divergence->actual);
    EXPECT_EQ(a.divergence->detail, b.divergence->detail);
  }
  EXPECT_EQ(a.return_value, b.return_value);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.baseline_time, b.baseline_time);
  EXPECT_EQ(a.variant_finish_time, b.variant_finish_time);
  EXPECT_EQ(a.variant_standalone_time, b.variant_standalone_time);
  EXPECT_EQ(a.variant_compute_scale, b.variant_compute_scale);
  EXPECT_EQ(a.synced_syscalls, b.synced_syscalls);
  EXPECT_EQ(a.ignored_syscalls, b.ignored_syscalls);
  EXPECT_EQ(a.lockstep_barriers, b.lockstep_barriers);
  EXPECT_EQ(a.lock_acquisitions, b.lock_acquisitions);
  EXPECT_EQ(a.avg_syscall_gap, b.avg_syscall_gap);
  EXPECT_EQ(a.max_syscall_gap, b.max_syscall_gap);
}

template <typename Configure>
void ExpectRemoteEquivalence(Configure configure, const char* what) {
  NvxBuilder unsharded_builder;
  configure(unsharded_builder);
  auto unsharded_session = unsharded_builder.Build();
  ASSERT_TRUE(unsharded_session.ok()) << unsharded_session.status().ToString();
  auto unsharded = unsharded_session->Run();
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();

  std::vector<std::shared_ptr<ExecutorServer>> fleet = {std::make_shared<ExecutorServer>(),
                                                        std::make_shared<ExecutorServer>()};
  for (size_t k : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::string(what) + " with k=" + std::to_string(k));

    NvxBuilder sharded_builder;
    configure(sharded_builder);
    auto sharded_session = sharded_builder.Shards(k).Build();
    ASSERT_TRUE(sharded_session.ok()) << sharded_session.status().ToString();
    auto sharded = sharded_session->Run();
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    NvxBuilder remote_builder;
    configure(remote_builder);
    auto remote_session = remote_builder.Shards(k).Remote(LoopbackFleet(fleet)).Build();
    ASSERT_TRUE(remote_session.ok()) << remote_session.status().ToString();
    auto remote = remote_session->Run();
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();

    // The acceptance criterion: the remote plane is bit-identical to the
    // in-process sharded plane at every k — every field, including virtual
    // clocks and telemetry. (Shards(k) itself intentionally differs from the
    // unsharded session in total_time and summed counters — the leader
    // replicas' monitor work is real; see RunReport::Merge — so unsharded
    // bit-identity is asserted at k=1, where no replicas exist.)
    ExpectReportsIdentical(*remote, *sharded, "remote vs sharded");
    if (k == 1) {
      ExpectReportsIdentical(*remote, *unsharded, "remote k=1 vs unsharded");
    }
    // Across every k, outcome and attribution match the unsharded session.
    EXPECT_EQ(remote->outcome, unsharded->outcome);
    ASSERT_EQ(remote->detection.has_value(), unsharded->detection.has_value());
    if (unsharded->detection.has_value()) {
      EXPECT_EQ(remote->detection->variant, unsharded->detection->variant);
      EXPECT_EQ(remote->detection->detector, unsharded->detection->detector);
    }
    ASSERT_EQ(remote->divergence.has_value(), unsharded->divergence.has_value());
    if (unsharded->divergence.has_value()) {
      EXPECT_EQ(remote->divergence->variant, unsharded->divergence->variant);
      EXPECT_EQ(remote->divergence->sync_index, unsharded->divergence->sync_index);
    }
    EXPECT_EQ(remote->baseline_time, unsharded->baseline_time);
    EXPECT_EQ(remote->variant_compute_scale, unsharded->variant_compute_scale);
  }
}

TEST(RemoteEquivalenceTest, IdenticalCleanRun) {
  ExpectRemoteEquivalence(
      [](NvxBuilder& b) { b.Benchmark(workload::Spec2006()[0]).Variants(6).Seed(11); },
      "identical/clean");
}

TEST(RemoteEquivalenceTest, SelectiveLockstep) {
  ExpectRemoteEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[1])
            .Variants(5)
            .Lockstep(nxe::LockstepMode::kSelective)
            .Seed(13);
      },
      "identical/selective");
}

TEST(RemoteEquivalenceTest, CheckDistributionDetection) {
  ExpectRemoteEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0])
            .Variants(6)
            .DistributeChecks(san::SanitizerId::kASan)
            .InjectDetection(3, "__asan_report_store")
            .Seed(17);
      },
      "check/detection");
}

TEST(RemoteEquivalenceTest, SanitizerDistribution) {
  ExpectRemoteEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0])
            .Variants(3)
            .DistributeSanitizers(
                {san::SanitizerId::kASan, san::SanitizerId::kMSan, san::SanitizerId::kUBSan})
            .Seed(19);
      },
      "sanitizer/clean");
}

TEST(RemoteEquivalenceTest, DivergenceAttribution) {
  ExpectRemoteEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[2])
            .Variants(5)
            .InjectDivergence(3, "exfiltrated-secret")
            .Seed(23)
            .MeasureStandalone();
      },
      "identical/divergence");
}

// ---------------------------------------------------------------------------
// Executor behavior: plan cache, occupancy feedback, affinity.
// ---------------------------------------------------------------------------

TEST(ExecutorTest, RepeatPlansHitTheExecutorPlanCache) {
  auto server = std::make_shared<ExecutorServer>();
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(3).Seed(41);
  auto session = builder.Remote({net::LoopbackEndpoint(server, "solo")}).Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  ASSERT_TRUE(session->Run().ok());
  const auto cold = server->stats();
  ASSERT_TRUE(session->Run().ok());
  ASSERT_TRUE(session->Run().ok());
  const auto warm = server->stats();

  EXPECT_EQ(cold.plan_cache_hits, 0u);
  EXPECT_GE(warm.plan_cache_hits, 2u);  // every repeat skipped decode/rebuild
  EXPECT_EQ(warm.decode_errors, 0u);
  EXPECT_EQ(server->plan_cache_stats().entries, 1u);
}

TEST(ExecutorTest, OccupancyFeedsBackToDispatcherStats) {
  auto server = std::make_shared<ExecutorServer>();
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(3).Seed(43);
  builder.Remote({net::LoopbackEndpoint(server, "solo")});
  auto session = builder.Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Run().ok());
  ASSERT_TRUE(session->Run().ok());

  // The builder moved the backend into the session; rebuild a backend
  // directly to introspect dispatcher stats.
  auto plan = builder.PlanVariants();
  ASSERT_TRUE(plan.ok());
  net::RemoteBackend backend(std::make_shared<const api::VariantPlan>(*plan),
                             api::ShardMemberGroups(plan->n_variants(), 1),
                             {net::LoopbackEndpoint(server, "solo")}, RemoteOptions{});
  ASSERT_TRUE(backend.Run({}).ok());
  const auto stats = backend.endpoint_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].dispatches, 1u);
  EXPECT_EQ(stats[0].failures, 0u);
  EXPECT_TRUE(stats[0].last_occupancy.plan_cache_hit);  // session warmed it above
}

TEST(ExecutorTest, AffinityIsConsistentPerCacheKeyAndGroup) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  std::vector<std::shared_ptr<ExecutorServer>> fleet = {
      std::make_shared<ExecutorServer>(), std::make_shared<ExecutorServer>(),
      std::make_shared<ExecutorServer>()};
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 2),
                             LoopbackFleet(fleet), RemoteOptions{});
  const uint64_t hash = net::AffinityHash(plan->CacheKey());
  // Same plan key -> same executor, and consecutive groups spread across
  // consecutive endpoints in the rotation.
  EXPECT_EQ(backend.PreferredEndpoint(0), hash % 3);
  EXPECT_EQ(backend.PreferredEndpoint(1), (hash + 1) % 3);
  EXPECT_EQ(backend.PreferredEndpoint(0), backend.PreferredEndpoint(0));
}

// ---------------------------------------------------------------------------
// Fault injection: every fault terminates with a definite Status.
// ---------------------------------------------------------------------------

Endpoint DeadEndpoint(std::string name) {
  Endpoint endpoint;
  endpoint.name = std::move(name);
  endpoint.dial = [] { return StatusOr<std::unique_ptr<support::Socket>>(
      Unavailable("executor process is gone")); };
  return endpoint;
}

// Dials succeed but the peer never answers: a hung executor.
Endpoint BlackHoleEndpoint(std::string name) {
  Endpoint endpoint;
  endpoint.name = std::move(name);
  // The server ends stay alive (captured) so the client blocks on recv
  // rather than observing a close.
  auto held = std::make_shared<std::vector<std::unique_ptr<support::Socket>>>();
  endpoint.dial = [held]() -> StatusOr<std::unique_ptr<support::Socket>> {
    auto [client, server] = support::LoopbackSocketPair();
    held->push_back(std::move(server));
    return std::move(client);
  };
  return endpoint;
}

// Replies with pre-baked bytes regardless of what was sent: consumes the
// request frame, sends the script, then closes — a malfunctioning executor.
struct ScriptedServers {
  std::mutex mu;
  std::vector<std::thread> threads;
  ~ScriptedServers() {
    for (auto& thread : threads) {
      thread.join();
    }
  }
};

Endpoint ScriptedEndpoint(std::string name, std::string reply_bytes) {
  auto holder = std::make_shared<ScriptedServers>();
  Endpoint endpoint;
  endpoint.name = std::move(name);
  endpoint.dial = [holder, reply_bytes]() -> StatusOr<std::unique_ptr<support::Socket>> {
    auto [client, server] = support::LoopbackSocketPair();
    std::shared_ptr<support::Socket> served = std::move(server);
    std::lock_guard<std::mutex> lock(holder->mu);
    holder->threads.emplace_back([served, reply_bytes] {
      (void)net::ReadFrame(*served);  // consume the request
      if (!reply_bytes.empty()) {
        (void)served->SendAll(reply_bytes.data(), reply_bytes.size());
      }
      served->Close();
    });
    return std::move(client);
  };
  return endpoint;
}

RemoteOptions FastFail() {
  RemoteOptions options;
  options.timeout_ms = 200;
  options.max_attempts = 2;
  options.backoff_ms = 1;
  options.unhealthy_cooldown_ms = 0;
  return options;
}

TEST(FaultTest, AllExecutorsDeadIsDefiniteUnavailable) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 2),
                             {DeadEndpoint("dead-0"), DeadEndpoint("dead-1")}, FastFail());
  auto report = backend.Run({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(FaultTest, DeadExecutorFailsOverToHealthyOne) {
  auto server = std::make_shared<ExecutorServer>();
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 2),
                             {DeadEndpoint("dead"), net::LoopbackEndpoint(server, "live")},
                             FastFail());
  auto report = backend.Run({});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, NvxOutcome::kDetected);  // the fixture injects one
}

TEST(FaultTest, HungExecutorTimesOutDefinitely) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  RemoteOptions options = FastFail();
  options.max_attempts = 1;
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 1),
                             {BlackHoleEndpoint("hung")}, options);
  auto report = backend.Run({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultTest, TruncatedReplyFrameIsDefiniteError) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  // Half a frame header, then the stream closes.
  std::string truncated = net::EncodeFrame(Frame{MessageType::kRunReply, 1, "x"});
  truncated.resize(10);
  RemoteOptions options = FastFail();
  options.max_attempts = 1;
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 1),
                             {ScriptedEndpoint("truncating", truncated)}, options);
  auto report = backend.Run({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(FaultTest, VersionMismatchIsDefiniteError) {
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  std::string bytes = net::EncodeFrame(Frame{MessageType::kRunReply, 1, ""});
  bytes[4] = 9;  // a future wire version
  RemoteOptions options = FastFail();
  options.max_attempts = 1;
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 1),
                             {ScriptedEndpoint("future-version", bytes)}, options);
  auto report = backend.Run({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultTest, ExecutorKilledMidRunRetriesElsewhere) {
  auto victim = std::make_shared<ExecutorServer>();
  auto survivor = std::make_shared<ExecutorServer>();
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(4).Seed(47);
  RemoteOptions options;
  options.unhealthy_cooldown_ms = 60000;  // keep the victim deprioritized
  auto session = builder
                     .Remote({net::LoopbackEndpoint(victim, "victim"),
                              net::LoopbackEndpoint(survivor, "survivor")},
                             options)
                     .Build();
  ASSERT_TRUE(session.ok());

  // Kill the victim while runs are in flight; every session must still
  // complete with a definite result (success via retry on the survivor).
  std::thread killer([&] { victim->Stop(); });
  for (int i = 0; i < 8; ++i) {
    auto report = session->Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, NvxOutcome::kOk);
  }
  killer.join();
}

TEST(FaultTest, StoppedExecutorRecoversAfterRestart) {
  auto server = std::make_shared<ExecutorServer>();
  auto plan = std::make_shared<const api::VariantPlan>(PlanFixture());
  net::RemoteBackend backend(plan, api::ShardMemberGroups(plan->n_variants(), 1),
                             {net::LoopbackEndpoint(server, "cycled")}, FastFail());
  ASSERT_TRUE(backend.Run({}).ok());

  server->Stop();
  auto down = backend.Run({});
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);

  server->Start();
  auto up = backend.Run({});  // cooldown 0: the restarted daemon is re-probed
  ASSERT_TRUE(up.ok()) << up.status().ToString();
}

// ---------------------------------------------------------------------------
// TCP transport: the same plane over real sockets.
// ---------------------------------------------------------------------------

TEST(TcpTest, RemoteSessionOverRealSockets) {
  auto server = std::make_shared<ExecutorServer>();
  Status listening = server->ListenTcp(0);
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind a TCP socket in this environment: "
                 << listening.ToString();
  }
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(3).Seed(53);
  auto remote_session =
      builder.Remote({net::TcpEndpoint("127.0.0.1", server->port())}).Build();
  ASSERT_TRUE(remote_session.ok());
  auto remote = remote_session->Run();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  NvxBuilder local_builder;
  local_builder.Benchmark(workload::Spec2006()[0]).Variants(3).Seed(53);
  auto local_session = local_builder.Build();
  ASSERT_TRUE(local_session.ok());
  auto local = local_session->Run();
  ASSERT_TRUE(local.ok());
  ExpectReportsIdentical(*remote, *local, "tcp remote vs local");
  server->Stop();
}

}  // namespace
}  // namespace bunshin
