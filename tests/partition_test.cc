// Tests for balanced N-partition: invariants for all algorithms plus quality
// properties (parameterized property sweeps).
#include <gtest/gtest.h>

#include <tuple>

#include "src/partition/partition.h"
#include "src/support/rng.h"

namespace bunshin {
namespace {

using partition::Algorithm;
using partition::Partition;
using partition::PartitionOptions;
using partition::PartitionResult;
using partition::ValidatePartition;

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, size_t, size_t, uint64_t>> {};

TEST_P(PartitionPropertyTest, DisjointCoverAndBalanceBound) {
  const auto [algorithm, n_items, n_bins, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> weights;
  double max_weight = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n_items; ++i) {
    const double w = rng.NextExponential(10.0);
    weights.push_back(w);
    max_weight = std::max(max_weight, w);
    total += w;
  }

  PartitionOptions options;
  options.algorithm = algorithm;
  auto result = Partition(weights, n_bins, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant: disjoint cover.
  EXPECT_TRUE(ValidatePartition(weights, *result, n_bins).ok());

  // Quality: no bin exceeds ideal + max item (the LPT bound holds for every
  // algorithm here because all are at least as good as greedy on these sizes).
  const double ideal = total / static_cast<double>(n_bins);
  EXPECT_LE(result->max_sum, ideal + max_weight + 1e-9)
      << partition::AlgorithmName(algorithm);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(Algorithm::kGreedyLpt, Algorithm::kKarmarkarKarp,
                                         Algorithm::kCompleteGreedy,
                                         Algorithm::kFptasSubsetSum),
                       ::testing::Values<size_t>(1, 2, 19, 64, 200),
                       ::testing::Values<size_t>(1, 2, 3, 8),
                       ::testing::Values<uint64_t>(7, 1234)),
    [](const auto& info) {
      std::string algo = partition::AlgorithmName(std::get<0>(info.param));
      for (char& c : algo) {
        if (c == '-') {
          c = '_';
        }
      }
      return algo + "_items" +
             std::to_string(std::get<1>(info.param)) + "_bins" +
             std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

TEST(PartitionTest, EmptyInputYieldsEmptyBins) {
  auto result = Partition({}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bins.size(), 3u);
  for (const auto& bin : result->bins) {
    EXPECT_TRUE(bin.empty());
  }
}

TEST(PartitionTest, RejectsZeroBins) { EXPECT_FALSE(Partition({1.0}, 0).ok()); }

TEST(PartitionTest, RejectsNegativeWeights) { EXPECT_FALSE(Partition({1.0, -2.0}, 2).ok()); }

TEST(PartitionTest, PerfectSplitFound) {
  // 2 bins, weights that admit a perfect 50/50 split.
  const std::vector<double> weights = {8, 7, 6, 5, 4, 3, 2, 1};  // total 36
  for (auto algorithm : {Algorithm::kKarmarkarKarp, Algorithm::kCompleteGreedy,
                         Algorithm::kFptasSubsetSum}) {
    PartitionOptions options;
    options.algorithm = algorithm;
    auto result = Partition(weights, 2, options);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->max_sum, 18.0, 1e-6) << partition::AlgorithmName(algorithm);
  }
}

TEST(PartitionTest, CompleteGreedyOptimalOnSmallHardInstance) {
  // Known partition stress case: LPT is suboptimal here; exhaustive search
  // within budget finds the optimum {4,5,6} vs {7,8}.
  const std::vector<double> weights = {7, 8, 4, 5, 6};
  PartitionOptions options;
  options.algorithm = Algorithm::kCompleteGreedy;
  auto result = Partition(weights, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->max_sum, 15.0, 1e-9);
}

TEST(PartitionTest, SingleDominantItemIsTheBound) {
  // The hmmer/lbm situation: one item holds ~97% of the weight; no algorithm
  // can balance, and max_sum equals that item's weight.
  std::vector<double> weights = {97.0, 1.0, 1.0, 1.0};
  for (auto algorithm : {Algorithm::kGreedyLpt, Algorithm::kKarmarkarKarp,
                         Algorithm::kCompleteGreedy, Algorithm::kFptasSubsetSum}) {
    PartitionOptions options;
    options.algorithm = algorithm;
    auto result = Partition(weights, 3, options);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->max_sum, 97.0, 1e-9);
  }
}

TEST(PartitionTest, BalanceRatioNearOneOnManySmallItems) {
  Rng rng(99);
  std::vector<double> weights;
  for (int i = 0; i < 500; ++i) {
    weights.push_back(1.0 + rng.NextDouble());
  }
  for (auto algorithm : {Algorithm::kKarmarkarKarp, Algorithm::kFptasSubsetSum}) {
    PartitionOptions options;
    options.algorithm = algorithm;
    auto result = Partition(weights, 3, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->balance_ratio, 1.02) << partition::AlgorithmName(algorithm);
  }
}

TEST(PartitionTest, MoreBinsNeverDecreaseMaxBinBelowIdeal) {
  Rng rng(5);
  std::vector<double> weights;
  double total = 0.0;
  for (int i = 0; i < 64; ++i) {
    weights.push_back(rng.NextExponential(4.0));
    total += weights.back();
  }
  for (size_t n = 1; n <= 6; ++n) {
    auto result = Partition(weights, n);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->max_sum + 1e-9, total / static_cast<double>(n));
  }
}

}  // namespace
}  // namespace bunshin
