// Tests for the session-batching plan cache (src/api/plan_cache.h) and the
// VariantPlan::CacheKey() correctness fixes it depends on:
//   * collision regressions — fixed 6-decimal double formatting aliased
//     sub-1e-6 deltas, and unescaped free-form names aliased across key
//     fields (both would have made a cache return the wrong plan);
//   * LRU eviction order, hit/miss/coalesced/eviction counters;
//   * base-plan caching with injection overlays (attack scenarios share the
//     clean sessions' cache entry);
//   * cached sessions bit-identical to uncached ones, plain and sharded;
//   * N threads Build()ing one key concurrently observe one shared plan
//     instance (single-flight coalescing) — runs under TSan in CI;
//   * the IR analogue: module-hash keyed IrNvxSystem reuse.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/api/nvx.h"
#include "src/api/plan_cache.h"
#include "src/core/bunshin.h"
#include "tests/testutil.h"

namespace bunshin {
namespace {

using api::NvxBuilder;
using api::NvxOutcome;
using api::PlanCache;
using api::PlanCacheStats;
using api::RunReport;
using api::VariantPlan;

// ---------------------------------------------------------------------------
// CacheKey collision regressions.
// ---------------------------------------------------------------------------

TEST(CacheKeyTest, DoubleFormattingIsRoundTripExact) {
  // std::to_string prints both of these "0.000000": any cost-model or noise
  // knob differing below 1e-6 aliased to one key.
  EXPECT_EQ(std::to_string(1e-7), std::to_string(2e-7));  // the old bug
  EXPECT_NE(api::CacheKeyDouble(1e-7), api::CacheKeyDouble(2e-7));
  EXPECT_NE(api::CacheKeyDouble(0.0035), api::CacheKeyDouble(0.0035 + 1e-9));
}

TEST(CacheKeyTest, SubMicroNoiseSigmaDeltasGetDistinctKeys) {
  auto key_at_sigma = [](double sigma) {
    workload::BenchmarkSpec spec = workload::Spec2006()[0];
    spec.noise_rel_sigma = sigma;
    auto key = NvxBuilder().Benchmark(spec).Variants(2).PlanCacheKey();
    EXPECT_TRUE(key.ok()) << key.status().ToString();
    return *key;
  };
  EXPECT_NE(key_at_sigma(1e-7), key_at_sigma(2e-7));
}

TEST(CacheKeyTest, SubMicroCostModelDeltasGetDistinctKeys) {
  auto key_at_alpha = [](double alpha) {
    nxe::CostModel cost;
    cost.llc_alpha = alpha;
    auto key = NvxBuilder()
                   .Benchmark(workload::Spec2006()[0])
                   .Variants(2)
                   .Cost(cost)
                   .PlanCacheKey();
    EXPECT_TRUE(key.ok()) << key.status().ToString();
    return *key;
  };
  EXPECT_NE(key_at_alpha(0.0035), key_at_alpha(0.0035 + 1e-9));
}

TEST(CacheKeyTest, ComponentsAreLengthPrefixed) {
  std::string crafted;
  api::AppendCacheKeyComponent(&crafted, "a|b");  // "3:a|b"
  std::string split;
  api::AppendCacheKeyComponent(&split, "a");  // "1:a" + literal "|b"
  split += "|b";
  EXPECT_NE(crafted, split);
}

TEST(CacheKeyTest, CraftedDetectorNameCannotAliasTwoInjections) {
  // Under the old unescaped format both produced "...|det1:a|det1:b".
  const workload::BenchmarkSpec& bench = workload::Spec2006()[0];
  auto one = NvxBuilder()
                 .Benchmark(bench)
                 .Variants(3)
                 .InjectDetection(1, "a|det1:b")
                 .PlanVariants();
  auto two = NvxBuilder()
                 .Benchmark(bench)
                 .Variants(3)
                 .InjectDetection(1, "a")
                 .InjectDetection(1, "b")
                 .PlanVariants();
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_NE(one->CacheKey(), two->CacheKey());
}

TEST(CacheKeyTest, CraftedDetectorCannotAliasAcrossInjectionKinds) {
  // Old format: detector "x|div1:y" == detector "x" + payload "y".
  const workload::BenchmarkSpec& bench = workload::Spec2006()[0];
  auto one = NvxBuilder()
                 .Benchmark(bench)
                 .Variants(3)
                 .InjectDetection(1, "x|div1:y")
                 .PlanVariants();
  auto two = NvxBuilder()
                 .Benchmark(bench)
                 .Variants(3)
                 .InjectDetection(1, "x")
                 .InjectDivergence(1, "y")
                 .PlanVariants();
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_NE(one->CacheKey(), two->CacheKey());
}

TEST(CacheKeyTest, BaseKeyIsComputableWithoutPlanningAndMatchesBasePlan) {
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0])
      .Variants(4)
      .DistributeChecks(san::SanitizerId::kASan)
      .Seed(7);
  auto key = builder.PlanCacheKey();
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  auto plan = builder.PlanVariants();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // No injections: the planned key IS the lookup key.
  EXPECT_EQ(plan->CacheKey(), *key);

  // Injections extend the base key, so the base stays the shared prefix.
  auto injected = builder.InjectDetection(2, "__asan_report_store").PlanVariants();
  ASSERT_TRUE(injected.ok());
  EXPECT_NE(injected->CacheKey(), *key);
  EXPECT_EQ(injected->CacheKey().rfind(*key, 0), 0u) << "base key must prefix the overlay key";
}

TEST(CacheKeyTest, PartitionOptionsAndOverheadsAreKeyed) {
  // Planning inputs that the old spec-derived key could only see indirectly
  // (or not at all) now split the key directly.
  NvxBuilder base;
  base.Benchmark(workload::Spec2006()[0]).Variants(4).DistributeChecks(san::SanitizerId::kASan);
  auto base_key = base.PlanCacheKey();
  ASSERT_TRUE(base_key.ok());

  partition::PartitionOptions greedy;
  greedy.algorithm = partition::Algorithm::kGreedyLpt;
  auto other_algo = NvxBuilder()
                        .Benchmark(workload::Spec2006()[0])
                        .Variants(4)
                        .DistributeChecks(san::SanitizerId::kASan)
                        .PartitionOptions(greedy)
                        .PlanCacheKey();
  ASSERT_TRUE(other_algo.ok());
  EXPECT_NE(*base_key, *other_algo);

  workload::BenchmarkSpec recalibrated = workload::Spec2006()[0];
  recalibrated.overheads.asan += 0.25;  // same name, different calibration
  auto other_overhead = NvxBuilder()
                            .Benchmark(recalibrated)
                            .Variants(4)
                            .DistributeChecks(san::SanitizerId::kASan)
                            .PlanCacheKey();
  ASSERT_TRUE(other_overhead.ok());
  EXPECT_NE(*base_key, *other_overhead);
}

// ---------------------------------------------------------------------------
// PlanCache mechanics: LRU order, counters, error handling.
// ---------------------------------------------------------------------------

std::shared_ptr<const VariantPlan> DummyPlan() {
  return std::make_shared<const VariantPlan>();
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  // One segment: strict global LRU (striping makes eviction per-segment).
  PlanCache cache(/*capacity=*/2, /*n_segments=*/1);
  cache.Insert("a", DummyPlan());
  cache.Insert("b", DummyPlan());
  EXPECT_NE(cache.Lookup("a"), nullptr);  // touch a: b becomes LRU
  cache.Insert("c", DummyPlan());         // evicts b

  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(PlanCacheTest, HitAndMissCountersTrackLookups) {
  PlanCache cache(4);
  size_t planned = 0;
  auto factory = [&planned]() -> StatusOr<VariantPlan> {
    ++planned;
    return VariantPlan();
  };

  bool hit = true;
  auto first = cache.GetOrPlan("k", factory, &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  auto second = cache.GetOrPlan("k", factory, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(planned, 1u);
  EXPECT_EQ(*first, *second) << "both callers must share one plan instance";

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, FactoryErrorsPropagateAndAreNotCached) {
  PlanCache cache(4);
  size_t calls = 0;
  auto failing = [&calls]() -> StatusOr<VariantPlan> {
    ++calls;
    return InvalidArgument("planning failed");
  };
  EXPECT_FALSE(cache.GetOrPlan("k", failing).ok());
  EXPECT_FALSE(cache.GetOrPlan("k", failing).ok());
  EXPECT_EQ(calls, 2u) << "errors must not poison the key";
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u) << "a failed planning run is never a hit";
}

TEST(PlanCacheTest, ThrowingFactoryDoesNotStrandTheKey) {
  PlanCache cache(4);
  auto throwing = []() -> StatusOr<VariantPlan> { throw std::runtime_error("planner bug"); };
  auto result = cache.GetOrPlan("k", throwing);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // The key must stay serviceable: a later (working) factory runs normally
  // instead of blocking on a stranded in-flight entry.
  auto recovered = cache.GetOrPlan("k", []() -> StatusOr<VariantPlan> { return VariantPlan(); });
  EXPECT_TRUE(recovered.ok());
}

// ---------------------------------------------------------------------------
// Builder integration: warm builds skip planning; overlays share the entry.
// ---------------------------------------------------------------------------

NvxBuilder CheckDistBuilder(std::shared_ptr<PlanCache> cache) {
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0])
      .Variants(4)
      .DistributeChecks(san::SanitizerId::kASan)
      .Seed(7)
      .WithPlanCache(std::move(cache));
  return builder;
}

TEST(PlanCacheSessionTest, WarmBuildSkipsReplanning) {
  auto cache = std::make_shared<PlanCache>(8);
  auto cold = CheckDistBuilder(cache).Build();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = CheckDistBuilder(cache).Build();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // Telemetry rides on every report of a cached session.
  auto cold_report = cold->Run();
  auto warm_report = warm->Run();
  ASSERT_TRUE(cold_report.ok() && warm_report.ok());
  EXPECT_FALSE(cold_report->plan_from_cache);
  EXPECT_TRUE(warm_report->plan_from_cache);
  ASSERT_TRUE(warm_report->plan_cache.has_value());
  EXPECT_EQ(warm_report->plan_cache->misses, 1u);
}

TEST(PlanCacheSessionTest, ObserverHookSeesHitAndMiss) {
  auto cache = std::make_shared<PlanCache>(8);
  std::vector<bool> hits;
  std::string seen_key;
  api::Observer observer;
  observer.on_plan_cache = [&hits, &seen_key](const std::string& key, bool hit) {
    hits.push_back(hit);
    seen_key = key;
  };
  auto first = CheckDistBuilder(cache).SetObserver(observer).Build();
  auto second = CheckDistBuilder(cache).SetObserver(observer).Build();
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_FALSE(hits[0]);
  EXPECT_TRUE(hits[1]);
  EXPECT_EQ(seen_key, *CheckDistBuilder(nullptr).PlanCacheKey());
}

TEST(PlanCacheSessionTest, InjectionOverlaysShareTheBaseEntry) {
  auto cache = std::make_shared<PlanCache>(8);
  auto clean = CheckDistBuilder(cache).Build();
  ASSERT_TRUE(clean.ok());
  // Same configuration + an attack splice: must HIT the clean entry, not
  // plan (or store) a second one.
  auto attacked = CheckDistBuilder(cache).InjectDetection(2, "__asan_report_store").Build();
  ASSERT_TRUE(attacked.ok()) << attacked.status().ToString();

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u) << "attack scenarios must not fragment the cache";

  auto clean_report = clean->Run();
  ASSERT_TRUE(clean_report.ok());
  EXPECT_EQ(clean_report->outcome, NvxOutcome::kOk);
  auto attack_report = attacked->Run();
  ASSERT_TRUE(attack_report.ok());
  EXPECT_EQ(attack_report->outcome, NvxOutcome::kDetected);
  EXPECT_EQ(attack_report->detection->variant, 2u);
  EXPECT_EQ(attack_report->detection->detector, "__asan_report_store");
}

TEST(PlanCacheSessionTest, OverlayIndexErrorsStillSurfaceAtBuild) {
  auto cache = std::make_shared<PlanCache>(8);
  auto bad = CheckDistBuilder(cache).InjectDetection(99, "__asan_report_store").Build();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanCacheSessionTest, CacheOnWrongTargetKindIsRejected) {
  // Opting into amortization that can never happen must fail loudly, not
  // silently re-plan forever.
  auto module = testutil::BuildBufferProgram();
  auto plan_on_module = NvxBuilder()
                            .Module(*module)
                            .Variants(2)
                            .DistributeUbsanSubSanitizers()
                            .WithPlanCache(std::make_shared<PlanCache>(4))
                            .Build();
  ASSERT_FALSE(plan_on_module.ok());
  EXPECT_EQ(plan_on_module.status().code(), StatusCode::kInvalidArgument);

  auto ir_on_trace = NvxBuilder()
                         .Benchmark(workload::Spec2006()[0])
                         .Variants(2)
                         .WithIrCache(std::make_shared<api::IrSystemCache>(4))
                         .Build();
  ASSERT_FALSE(ir_on_trace.ok());
  EXPECT_EQ(ir_on_trace.status().code(), StatusCode::kInvalidArgument);
}

// Cached and uncached sessions must be indistinguishable in what they
// compute — the whole point of the cache is to skip work, not change it.
TEST(PlanCacheSessionTest, CachedSessionBitIdenticalToUncached) {
  NvxBuilder uncached;
  uncached.Benchmark(workload::Spec2006()[0])
      .Variants(4)
      .DistributeChecks(san::SanitizerId::kASan)
      .Seed(31)
      .MeasureStandalone();
  auto expected_session = uncached.Build();
  ASSERT_TRUE(expected_session.ok());
  auto expected = expected_session->Run();
  ASSERT_TRUE(expected.ok());

  auto cache = std::make_shared<PlanCache>(8);
  for (int round = 0; round < 2; ++round) {  // round 0 fills, round 1 hits
    NvxBuilder cached = uncached;
    auto session = cached.WithPlanCache(cache).Build();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto actual = session->Run();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    EXPECT_EQ(actual->outcome, expected->outcome);
    EXPECT_DOUBLE_EQ(actual->total_time, expected->total_time);
    EXPECT_EQ(actual->variant_finish_time, expected->variant_finish_time);
    EXPECT_EQ(actual->variant_standalone_time, expected->variant_standalone_time);
    EXPECT_EQ(actual->variant_compute_scale, expected->variant_compute_scale);
    EXPECT_EQ(actual->synced_syscalls, expected->synced_syscalls);
    EXPECT_EQ(actual->lockstep_barriers, expected->lockstep_barriers);
    ASSERT_TRUE(actual->baseline_time.has_value());
    EXPECT_DOUBLE_EQ(*actual->baseline_time, *expected->baseline_time);
  }
}

TEST(PlanCacheSessionTest, ShardedSessionsFromCachedPlanMatchUncached) {
  NvxBuilder uncached;
  uncached.Benchmark(workload::Spec2006()[2])
      .Variants(5)
      .InjectDivergence(3, "exfiltrated-secret")
      .Seed(23)
      .Shards(2);
  auto expected_session = uncached.Build();
  ASSERT_TRUE(expected_session.ok());
  auto expected = expected_session->Run();
  ASSERT_TRUE(expected.ok());

  auto cache = std::make_shared<PlanCache>(8);
  for (int round = 0; round < 2; ++round) {
    NvxBuilder cached = uncached;
    auto session = cached.WithPlanCache(cache).Build();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto actual = session->Run();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->outcome, expected->outcome);
    ASSERT_TRUE(actual->divergence.has_value());
    EXPECT_EQ(actual->divergence->variant, expected->divergence->variant);
    EXPECT_EQ(actual->divergence->sync_index, expected->divergence->sync_index);
    EXPECT_EQ(actual->divergence->detail, expected->divergence->detail);
    EXPECT_DOUBLE_EQ(actual->total_time, expected->total_time);
    EXPECT_EQ(actual->variant_finish_time, expected->variant_finish_time);
  }
  // The sharded builds share one base entry (injections overlaid per build).
  EXPECT_EQ(cache->stats().entries, 1u);
}

TEST(PlanCacheSessionTest, PlanVariantsConsultsTheCacheToo) {
  auto cache = std::make_shared<PlanCache>(8);
  auto first = CheckDistBuilder(cache).PlanVariants();
  auto second = CheckDistBuilder(cache).PlanVariants();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->CacheKey(), second->CacheKey());
  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency: one key, many builders, one plan instance. (TSan in CI.)
// ---------------------------------------------------------------------------

TEST(PlanCacheConcurrencyTest, ConcurrentBuildsOfOneKeyShareOnePlan) {
  auto cache = std::make_shared<PlanCache>(8);
  constexpr size_t kThreads = 8;
  std::vector<StatusOr<RunReport>> reports(kThreads, Status(StatusCode::kInternal, "pending"));
  {
    std::vector<std::thread> builders;
    builders.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      builders.emplace_back([&cache, &reports, t] {
        auto session = CheckDistBuilder(cache).Build();
        if (!session.ok()) {
          reports[t] = session.status();
          return;
        }
        reports[t] = session->Run();
      });
    }
    for (auto& thread : builders) {
      thread.join();
    }
  }

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one thread may plan";
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1u);

  for (const auto& report : reports) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, NvxOutcome::kOk);
    EXPECT_DOUBLE_EQ(report->total_time, reports[0]->total_time);
  }
}

// ---------------------------------------------------------------------------
// The IR analogue: module-hash keyed IrNvxSystem reuse.
// ---------------------------------------------------------------------------

TEST(IrCacheTest, StructuralHashSeesEveryEdit) {
  auto module = testutil::BuildBufferProgram();
  auto clone = module->Clone();
  EXPECT_EQ(core::StructuralHash(*module), core::StructuralHash(*clone));

  // Any instruction-level edit must change the hash.
  ir::Function* fn = clone->GetFunction("main");
  fn->mutable_blocks()[0].insts[0].origin = ir::InstOrigin::kMetadata;
  EXPECT_NE(core::StructuralHash(*module), core::StructuralHash(*clone));
}

TEST(IrCacheTest, WarmIrBuildReusesTheSystem) {
  auto module = testutil::BuildBufferProgram();
  auto cache = std::make_shared<api::IrSystemCache>(4);

  auto build = [&module, &cache]() {
    return NvxBuilder()
        .Module(*module)
        .Variants(2)
        .DistributeUbsanSubSanitizers()
        .WithIrCache(cache)
        .Build();
  };
  auto cold = build();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = build();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  auto cold_report = cold->Run(api::Call("main", {1}));
  auto warm_report = warm->Run(api::Call("main", {1}));
  ASSERT_TRUE(cold_report.ok() && warm_report.ok());
  EXPECT_EQ(warm_report->outcome, cold_report->outcome);
  EXPECT_EQ(warm_report->return_value, cold_report->return_value);
  EXPECT_TRUE(warm_report->plan_from_cache);
  EXPECT_FALSE(cold_report->plan_from_cache);

  // An edited module must miss: the hash keys the entry.
  auto edited = module->Clone();
  ir::Function* fn = edited->GetFunction("main");
  fn->mutable_blocks()[0].insts[0].origin = ir::InstOrigin::kMetadata;
  auto rebuilt = NvxBuilder()
                     .Module(*edited)
                     .Variants(2)
                     .DistributeUbsanSubSanitizers()
                     .WithIrCache(cache)
                     .Build();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(cache->stats().misses, 2u);
}

}  // namespace
}  // namespace bunshin
