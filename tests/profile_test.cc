// Tests for the overhead profiler (IR path and synthesized path).
#include <gtest/gtest.h>

#include "src/profile/profiler.h"
#include "src/sanitizer/asan_pass.h"
#include "src/workload/funcprofile.h"
#include "src/workload/workload.h"
#include "tests/testutil.h"

namespace bunshin {
namespace {

TEST(ProfilerTest, MeasuresPerFunctionOverhead) {
  auto baseline = testutil::BuildMultiFunctionProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());

  auto profile = profile::ProfileCheckDistribution(
      *baseline, *instrumented, {{"main", {30}}, {"main", {10}}});
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  EXPECT_GT(profile->TotalOverhead(), 0.0);
  EXPECT_EQ(profile->functions.size(), 4u);  // hot, warm, cold, main

  // The loop-heavy, memory-heavy function must dominate the deltas.
  uint64_t hot_delta = 0;
  uint64_t cold_delta = 0;
  for (const auto& fn : profile->functions) {
    if (fn.function == "hot") {
      hot_delta = fn.Delta();
    }
    if (fn.function == "cold") {
      cold_delta = fn.Delta();
    }
  }
  EXPECT_GT(hot_delta, cold_delta);
}

TEST(ProfilerTest, WeightsAlignWithFunctions) {
  auto baseline = testutil::BuildMultiFunctionProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());
  auto profile =
      profile::ProfileCheckDistribution(*baseline, *instrumented, {{"main", {20}}});
  ASSERT_TRUE(profile.ok());
  const auto weights = profile->DistributableWeights();
  ASSERT_EQ(weights.size(), profile->functions.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i], static_cast<double>(profile->functions[i].Delta()));
  }
}

TEST(ProfilerTest, RejectsEmptyWorkload) {
  auto module = testutil::BuildMultiFunctionProgram();
  EXPECT_FALSE(profile::ProfileCheckDistribution(*module, *module, {}).ok());
}

TEST(ProfilerTest, RejectsCrashingWorkload) {
  auto baseline = testutil::BuildArithProgram();
  auto profile =
      profile::ProfileCheckDistribution(*baseline, *baseline, {{"main", {1, 0}}});  // div 0
  EXPECT_FALSE(profile.ok());
}

TEST(ProfilerTest, WholeProgramOverheadMatchesCostRatio) {
  auto baseline = testutil::BuildBufferProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());
  auto overhead = profile::ProfileWholeProgram(*baseline, *instrumented, {{"main", {2}}});
  ASSERT_TRUE(overhead.ok());
  EXPECT_GT(*overhead, 0.0);
  EXPECT_LT(*overhead, 10.0);  // sanity bound
}

TEST(SynthesizedProfileTest, MatchesCalibratedTotals) {
  for (const auto& bench : workload::Spec2006()) {
    const auto profile =
        workload::SynthesizeFunctionProfile(bench, san::SanitizerId::kASan, 1);
    EXPECT_EQ(profile.functions.size(), bench.n_functions) << bench.name;
    // Total overhead ~= calibrated whole-program number (rounding slack).
    EXPECT_NEAR(profile.TotalOverhead(), bench.overheads.asan, 0.05) << bench.name;
    // Hottest share is honored.
    EXPECT_NEAR(profile.HottestFunctionShare(), bench.hottest_share, 0.03) << bench.name;
  }
}

TEST(SynthesizedProfileTest, DeterministicInSeed) {
  const auto& bench = workload::Spec2006()[0];
  const auto a = workload::SynthesizeFunctionProfile(bench, san::SanitizerId::kASan, 9);
  const auto b = workload::SynthesizeFunctionProfile(bench, san::SanitizerId::kASan, 9);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].instrumented_cost, b.functions[i].instrumented_cost);
  }
}

TEST(SynthesizedProfileTest, ResidualFractionSaneForAllSanitizers) {
  for (const auto& info : san::AllSanitizers()) {
    const double r = workload::ResidualFraction(info.id);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 0.5);
  }
}

}  // namespace
}  // namespace bunshin
