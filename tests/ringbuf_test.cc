// Real-thread stress tests for the lock-free ring buffers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/ringbuf/ringbuf.h"

namespace bunshin {
namespace {

TEST(SpscRingTest, FifoSingleThread) {
  ringbuf::SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
}

TEST(SpscRingTest, CapacityMustBePowerOfTwo) {
  EXPECT_TRUE(ringbuf::IsPowerOfTwo(64));
  EXPECT_FALSE(ringbuf::IsPowerOfTwo(48));
  EXPECT_FALSE(ringbuf::IsPowerOfTwo(0));
}

TEST(SpscRingTest, ConcurrentFifoNoLossNoTearing) {
  constexpr int kCount = 100000;
  ringbuf::SpscRing<uint64_t> ring(128);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      // Encode a checksum into the value to catch tearing.
      const uint64_t v = (static_cast<uint64_t>(i) << 20) | (static_cast<uint64_t>(i) % 997);
      ring.Push(v);
    }
  });
  uint64_t received = 0;
  bool ok = true;
  std::thread consumer([&] {
    for (int i = 0; i < kCount; ++i) {
      const uint64_t v = ring.Pop();
      if ((v >> 20) != static_cast<uint64_t>(i) || (v & 0xFFFFF) != (v >> 20) % 997) {
        ok = false;
        break;
      }
      ++received;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, static_cast<uint64_t>(kCount));
}

TEST(BroadcastRingTest, EveryFollowerSeesEveryEntryInOrder) {
  ringbuf::BroadcastRing<int> ring(16, 3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ring.TryPublish(i));
  }
  for (size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      int out = -1;
      EXPECT_TRUE(ring.TryConsume(c, &out));
      EXPECT_EQ(out, i);
    }
    int out;
    EXPECT_FALSE(ring.TryConsume(c, &out));
  }
}

TEST(BroadcastRingTest, ProducerBlockedBySlowestConsumer) {
  ringbuf::BroadcastRing<int> ring(4, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPublish(i));
  }
  EXPECT_FALSE(ring.TryPublish(4));  // full: nobody consumed yet
  int out;
  EXPECT_TRUE(ring.TryConsume(0, &out));  // fast consumer advances
  EXPECT_FALSE(ring.TryPublish(4));       // still blocked by consumer 1
  EXPECT_TRUE(ring.TryConsume(1, &out));  // slow consumer advances
  EXPECT_TRUE(ring.TryPublish(4));        // now there is room
}

TEST(BroadcastRingTest, BacklogTracksSyscallGap) {
  ringbuf::BroadcastRing<int> ring(16, 2);
  for (int i = 0; i < 6; ++i) {
    ring.Publish(i);
  }
  int out;
  ring.TryConsume(0, &out);
  ring.TryConsume(0, &out);
  EXPECT_EQ(ring.Backlog(0), 4u);
  EXPECT_EQ(ring.Backlog(1), 6u);
  EXPECT_EQ(ring.MaxBacklog(), 6u);  // §5.3's attack-window metric
}

TEST(BroadcastRingTest, ConcurrentLeaderTwoFollowers) {
  constexpr int kCount = 50000;
  ringbuf::BroadcastRing<int> ring(64, 2);
  std::thread leader([&] {
    for (int i = 0; i < kCount; ++i) {
      ring.Publish(i);
    }
  });
  std::vector<std::thread> followers;
  std::vector<bool> ok(2, true);
  for (size_t c = 0; c < 2; ++c) {
    followers.emplace_back([&, c] {
      for (int i = 0; i < kCount; ++i) {
        if (ring.Consume(c) != i) {
          ok[c] = false;
          break;
        }
      }
    });
  }
  leader.join();
  for (auto& t : followers) {
    t.join();
  }
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  EXPECT_EQ(ring.published(), static_cast<uint64_t>(kCount));
}

}  // namespace
}  // namespace bunshin
