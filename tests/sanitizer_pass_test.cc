// Tests for the sanitizer instrumentation passes: semantics preservation on
// benign inputs, detection on malicious inputs, and the conflict matrix.
#include <gtest/gtest.h>

#include "src/ir/interp.h"
#include "src/ir/verifier.h"
#include "src/sanitizer/asan_pass.h"
#include "src/sanitizer/msan_pass.h"
#include "src/sanitizer/sanitizer.h"
#include "src/sanitizer/ubsan_pass.h"
#include "tests/testutil.h"

namespace bunshin {
namespace {

TEST(AsanPassTest, InstrumentedModuleVerifies) {
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  auto stats = pass.Run(module.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->checks_inserted, 0u);
  EXPECT_GT(stats->metadata_instructions, 0u);
  EXPECT_TRUE(ir::VerifyModule(*module).ok()) << ir::VerifyModule(*module).message();
}

TEST(AsanPassTest, BenignBehaviorPreserved) {
  auto baseline = testutil::BuildBufferProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());

  ir::Interpreter base_interp(baseline.get());
  ir::Interpreter inst_interp(instrumented.get());
  for (int idx = 0; idx < 4; ++idx) {
    ir::ExecResult base = base_interp.Run("main", {idx});
    ir::ExecResult inst = inst_interp.Run("main", {idx});
    ASSERT_EQ(base.outcome, ir::Outcome::kReturned);
    ASSERT_EQ(inst.outcome, ir::Outcome::kReturned) << inst.detector << inst.trap_reason;
    EXPECT_EQ(base.return_value, inst.return_value);
    EXPECT_EQ(base.events, inst.events);
  }
}

TEST(AsanPassTest, DetectsContiguousOverflowIntoRedzone) {
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  // idx == 4 reads one past the buffer: the right redzone.
  ir::ExecResult result = interp.Run("main", {4});
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
  EXPECT_EQ(result.detector, "__asan_report_load");
  // idx == -1 hits the left redzone.
  result = interp.Run("main", {-1});
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
}

TEST(AsanPassTest, InstrumentationCostsTime) {
  auto baseline = testutil::BuildMultiFunctionProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());
  ir::Interpreter base_interp(baseline.get());
  ir::Interpreter inst_interp(instrumented.get());
  const auto base = base_interp.Run("main", {40});
  const auto inst = inst_interp.Run("main", {40});
  ASSERT_EQ(inst.outcome, ir::Outcome::kReturned);
  EXPECT_GT(inst.cost, base.cost);
}

TEST(MsanPassTest, BenignInitializedReadOk) {
  auto module = testutil::BuildUninitProgram();
  san::MsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ASSERT_TRUE(ir::VerifyModule(*module).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {1});  // flag set: store happens
  ASSERT_EQ(result.outcome, ir::Outcome::kReturned) << result.detector;
  EXPECT_EQ(result.return_value, 7);
}

TEST(MsanPassTest, DetectsUninitializedRead) {
  auto module = testutil::BuildUninitProgram();
  san::MsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {0});  // store skipped
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
  EXPECT_EQ(result.detector, "__msan_report_uninit");
}

TEST(MsanPassTest, UninstrumentedReadGoesUnnoticed) {
  auto module = testutil::BuildUninitProgram();
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {0});
  EXPECT_EQ(result.outcome, ir::Outcome::kReturned);  // silent bug
}

TEST(UbsanPassTest, BenignArithmeticPreserved) {
  auto baseline = testutil::BuildArithProgram();
  auto instrumented = baseline->Clone();
  san::UbsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());
  ASSERT_TRUE(ir::VerifyModule(*instrumented).ok());
  ir::Interpreter base_interp(baseline.get());
  ir::Interpreter inst_interp(instrumented.get());
  const auto base = base_interp.Run("main", {20, 3});
  const auto inst = inst_interp.Run("main", {20, 3});
  ASSERT_EQ(inst.outcome, ir::Outcome::kReturned) << inst.detector;
  EXPECT_EQ(base.return_value, inst.return_value);
}

TEST(UbsanPassTest, DetectsDivByZero) {
  auto module = testutil::BuildArithProgram();
  san::UbsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {10, 0});
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
  EXPECT_EQ(result.detector, "__ubsan_report_integer_divide_by_zero");
}

TEST(UbsanPassTest, DetectsShiftOutOfBounds) {
  auto module = testutil::BuildArithProgram();
  san::UbsanPass pass({.enabled = {"shift"}});
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {10, 70});
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
  EXPECT_EQ(result.detector, "__ubsan_report_shift_out_of_bounds");
}

TEST(UbsanPassTest, DetectsSignedOverflow) {
  auto module = testutil::BuildArithProgram();
  san::UbsanPass pass({.enabled = {"signed-integer-overflow"}});
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  const int64_t big = INT64_MAX - 5;
  ir::ExecResult result = interp.Run("main", {big, 100});
  ASSERT_EQ(result.outcome, ir::Outcome::kDetected);
  EXPECT_EQ(result.detector, "__ubsan_report_signed_integer_overflow");
}

TEST(UbsanPassTest, SubSanitizerSelectionIsHonored) {
  // Only divide-by-zero enabled: a bad shift passes through unchecked.
  auto module = testutil::BuildArithProgram();
  san::UbsanPass pass({.enabled = {"integer-divide-by-zero"}});
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {10, 70});
  EXPECT_EQ(result.outcome, ir::Outcome::kReturned);  // shift UB unnoticed
}

TEST(ConflictMatrixTest, AsanMsanConflict) {
  EXPECT_TRUE(san::Conflicts(san::SanitizerId::kASan, san::SanitizerId::kMSan));
  EXPECT_FALSE(san::Conflicts(san::SanitizerId::kASan, san::SanitizerId::kUBSan));
  EXPECT_FALSE(san::Conflicts(san::SanitizerId::kMSan, san::SanitizerId::kUBSan));
  EXPECT_FALSE(san::Conflicts(san::SanitizerId::kSoftBound, san::SanitizerId::kCETS));
}

TEST(ConflictMatrixTest, CollectivelyEnforceable) {
  EXPECT_FALSE(san::CollectivelyEnforceable(
      {san::SanitizerId::kASan, san::SanitizerId::kMSan, san::SanitizerId::kUBSan}));
  EXPECT_TRUE(
      san::CollectivelyEnforceable({san::SanitizerId::kASan, san::SanitizerId::kUBSan}));
  EXPECT_TRUE(
      san::CollectivelyEnforceable({san::SanitizerId::kSoftBound, san::SanitizerId::kCETS,
                                    san::SanitizerId::kStackCookie}));
}

// The paper's motivating incompatibility, reproduced concretely: ASan and
// MSan assign opposite meanings to the same shadow, so enforcing both on one
// binary false-positives on a perfectly benign program.
TEST(ConflictMatrixTest, AsanPlusMsanOnOneBinaryMisbehaves) {
  auto module = testutil::BuildBufferProgram();
  san::MsanPass msan;
  ASSERT_TRUE(msan.Run(module.get()).ok());
  san::AsanPass asan;
  ASSERT_TRUE(asan.Run(module.get()).ok());
  ir::Interpreter interp(module.get());
  ir::ExecResult result = interp.Run("main", {2});  // benign access
  EXPECT_NE(result.outcome, ir::Outcome::kReturned);
}

TEST(ConflictMatrixTest, UBSanHasNineteenSubSanitizers) {
  EXPECT_EQ(san::UBSanSubSanitizers().size(), 19u);
  for (const auto& sub : san::UBSanSubSanitizers()) {
    EXPECT_LE(sub.mean_overhead, 0.40) << sub.name;  // "each no more than 40%"
  }
  EXPECT_NEAR(san::UBSanCombinedOverhead(), 2.28, 1e-9);
}

}  // namespace
}  // namespace bunshin
