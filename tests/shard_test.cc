// Tests for the plan/execute seam and the sharded backend (src/api/plan.h,
// src/api/shard.h): RunReport::Merge semantics over hand-built partials,
// VariantPlan caching keys, ThreadPool sizing for nested dispatch, and the
// acceptance property that Shards(k).Build() reproduces the unsharded
// session's outcome and incident attribution for every strategy. This suite
// runs under ThreadSanitizer in CI alongside the async suites.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/async.h"
#include "src/api/nvx.h"
#include "src/api/shard.h"
#include "src/support/thread_pool.h"

namespace bunshin {
namespace {

using api::CompletionQueue;
using api::NvxBuilder;
using api::NvxOutcome;
using api::PartialReport;
using api::RunReport;

// ---------------------------------------------------------------------------
// RunReport::Merge over hand-built partials.
// ---------------------------------------------------------------------------

// A clean partial covering `variant_index`, with per-slot finish times.
PartialReport CleanPartial(std::vector<size_t> variant_index, bool owns_baseline,
                           double total_time) {
  PartialReport partial;
  partial.variant_index = std::move(variant_index);
  partial.owns_baseline = owns_baseline;
  partial.report.backend = "trace";
  partial.report.outcome = NvxOutcome::kOk;
  partial.report.total_time = total_time;
  for (size_t i = 0; i < partial.variant_index.size(); ++i) {
    partial.report.variant_finish_time.push_back(total_time - static_cast<double>(i));
    partial.report.variant_compute_scale.push_back(1.0 + static_cast<double>(i));
  }
  partial.report.synced_syscalls = 10;
  partial.report.lockstep_barriers = 10;
  return partial;
}

TEST(MergeTest, RejectsNoPartials) {
  auto merged = RunReport::Merge(3, {});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, EmptyShardContributesNothing) {
  PartialReport empty;  // a shard group that held no variants at all
  auto merged = RunReport::Merge(3, {CleanPartial({0, 1, 2}, true, 100.0), empty});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->outcome, NvxOutcome::kOk);
  EXPECT_DOUBLE_EQ(merged->total_time, 100.0);
  ASSERT_EQ(merged->variant_finish_time.size(), 3u);
  EXPECT_DOUBLE_EQ(merged->variant_finish_time[1], 99.0);
  EXPECT_EQ(merged->synced_syscalls, 10u);  // the empty shard adds none
}

TEST(MergeTest, ScattersOwnedSlotsAndSkipsLeaderReplica) {
  // Shard A owns the baseline + variant 2; shard B runs a leader replica
  // (local slot 0 -> global 0) it does not own, plus variants 1 and 3.
  PartialReport a = CleanPartial({0, 2}, true, 50.0);
  a.report.baseline_time = 25.0;
  PartialReport b = CleanPartial({0, 1, 3}, false, 80.0);

  auto merged = RunReport::Merge(4, {a, b});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_DOUBLE_EQ(merged->total_time, 80.0);  // slowest shard
  ASSERT_TRUE(merged->baseline_time.has_value());
  EXPECT_DOUBLE_EQ(*merged->baseline_time, 25.0);
  EXPECT_DOUBLE_EQ(*merged->Overhead(), 80.0 / 25.0 - 1.0);
  // Leader slot comes from A (its local 0), not B's replica.
  EXPECT_DOUBLE_EQ(merged->variant_finish_time[0], 50.0);
  EXPECT_DOUBLE_EQ(merged->variant_finish_time[2], 49.0);
  EXPECT_DOUBLE_EQ(merged->variant_finish_time[1], 79.0);
  EXPECT_DOUBLE_EQ(merged->variant_finish_time[3], 78.0);
  // Counters sum across shards (the replica's monitor work is real).
  EXPECT_EQ(merged->synced_syscalls, 20u);
  EXPECT_EQ(merged->lockstep_barriers, 20u);
}

TEST(MergeTest, DetectionInTwoShardsEarliestVirtualTimeWins) {
  PartialReport late = CleanPartial({0, 1}, true, 90.0);
  late.report.outcome = NvxOutcome::kDetected;
  late.report.detection = api::Detection{1, 0, "__asan_report_load"};
  late.report.aborted_all = true;

  PartialReport early = CleanPartial({0, 2, 3}, false, 40.0);
  early.report.outcome = NvxOutcome::kDetected;
  early.report.detection = api::Detection{2, 1, "__msan_warning"};  // local slot 2 -> global 3
  early.report.aborted_all = true;

  // Listed late-first: the merge must still pick the earlier abort.
  auto merged = RunReport::Merge(4, {late, early});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->outcome, NvxOutcome::kDetected);
  ASSERT_TRUE(merged->detection.has_value());
  EXPECT_EQ(merged->detection->variant, 3u);  // remapped to the global slot
  EXPECT_EQ(merged->detection->thread, 1u);
  EXPECT_EQ(merged->detection->detector, "__msan_warning");
  EXPECT_TRUE(merged->aborted_all);
}

TEST(MergeTest, DetectionOutranksDivergence) {
  PartialReport diverged = CleanPartial({0, 1}, true, 10.0);  // earlier in time...
  diverged.report.outcome = NvxOutcome::kDiverged;
  diverged.report.divergence = api::Divergence{1, 0, 5, "write(64)", "write(13)", ""};
  diverged.report.aborted_all = true;

  PartialReport detected = CleanPartial({0, 2}, false, 70.0);
  detected.report.outcome = NvxOutcome::kDetected;
  detected.report.detection = api::Detection{1, 0, "__asan_report_store"};
  detected.report.aborted_all = true;

  // ...but the lattice puts Detection above Divergence regardless.
  auto merged = RunReport::Merge(3, {diverged, detected});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->outcome, NvxOutcome::kDetected);
  EXPECT_EQ(merged->detection->variant, 2u);
  EXPECT_FALSE(merged->divergence.has_value());
}

TEST(MergeTest, DivergenceInOneShardCleanInRest) {
  PartialReport clean = CleanPartial({0, 1}, true, 100.0);
  PartialReport diverged = CleanPartial({0, 2, 3}, false, 60.0);
  diverged.report.outcome = NvxOutcome::kDiverged;
  diverged.report.divergence =
      api::Divergence{1, 0, 7, "write(64)", "write(13)", "variant 1 expected 'write(64)' got 'write(13)'"};
  diverged.report.aborted_all = true;

  auto merged = RunReport::Merge(4, {clean, diverged});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->outcome, NvxOutcome::kDiverged);
  ASSERT_TRUE(merged->divergence.has_value());
  EXPECT_EQ(merged->divergence->variant, 2u);     // local 1 -> global 2
  EXPECT_EQ(merged->divergence->sync_index, 7u);  // leader-relative position survives
  EXPECT_EQ(merged->divergence->expected, "write(64)");
  EXPECT_EQ(merged->divergence->actual, "write(13)");
  // The detail names the *global* variant after the merge.
  EXPECT_EQ(merged->divergence->detail, "variant 2 expected 'write(64)' got 'write(13)'");
  EXPECT_TRUE(merged->aborted_all);
  EXPECT_DOUBLE_EQ(merged->total_time, 100.0);  // the clean shard ran to completion
}

TEST(MergeTest, RejectsDoublyOwnedSlotAndBadIndex) {
  auto doubled = RunReport::Merge(3, {CleanPartial({0, 1}, true, 10.0),
                                      CleanPartial({0, 1}, false, 10.0)});
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), StatusCode::kInvalidArgument);

  auto out_of_range = RunReport::Merge(2, {CleanPartial({0, 5}, true, 10.0)});
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// VariantPlan: the cacheable planning product.
// ---------------------------------------------------------------------------

TEST(VariantPlanTest, PlanCarriesSpecsAndCacheKeyIdentifiesConfig) {
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(4).Seed(7);
  auto plan = builder.PlanVariants();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->n_variants(), 4u);
  EXPECT_EQ(plan->specs.size(), 4u);
  EXPECT_EQ(plan->labels.size(), 4u);

  // Same configuration -> same key (the session-batching cache contract).
  auto replanned = builder.PlanVariants();
  ASSERT_TRUE(replanned.ok());
  EXPECT_EQ(plan->CacheKey(), replanned->CacheKey());

  // Any plan-shaping knob changes the key.
  auto reseeded = NvxBuilder().Benchmark(workload::Spec2006()[0]).Variants(4).Seed(8).PlanVariants();
  ASSERT_TRUE(reseeded.ok());
  EXPECT_NE(plan->CacheKey(), reseeded->CacheKey());
  auto distributed = NvxBuilder()
                         .Benchmark(workload::Spec2006()[0])
                         .Variants(4)
                         .Seed(7)
                         .DistributeChecks(san::SanitizerId::kASan)
                         .PlanVariants();
  ASSERT_TRUE(distributed.ok());
  EXPECT_NE(plan->CacheKey(), distributed->CacheKey());
}

TEST(VariantPlanTest, BuilderValidatesShardConfigurations) {
  auto zero = NvxBuilder().Benchmark(workload::Spec2006()[0]).Variants(2).Shards(0).Build();
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  ir::Module module;
  auto on_module = NvxBuilder()
                       .Module(module)
                       .Variants(2)
                       .DistributeUbsanSubSanitizers()
                       .Shards(2)
                       .Build();
  ASSERT_FALSE(on_module.ok());
  EXPECT_EQ(on_module.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ThreadPool sizing for nested dispatch.
// ---------------------------------------------------------------------------

TEST(ThreadPoolSizingTest, MinWorkersClampApplies) {
  support::ThreadPool clamped(1, /*min_workers=*/2);
  EXPECT_EQ(clamped.n_workers(), 2u);
  support::ThreadPool unclamped(4, /*min_workers=*/2);
  EXPECT_EQ(unclamped.n_workers(), 4u);
  // 0 still resolves to hardware concurrency first, then clamps: on a 1-core
  // CI container this is exactly the sharding deadlock guard.
  support::ThreadPool resolved(0, /*min_workers=*/2);
  EXPECT_GE(resolved.n_workers(), 2u);
}

// ---------------------------------------------------------------------------
// Sharded sessions reproduce the unsharded session.
// ---------------------------------------------------------------------------

// Applies `configure` to a fresh builder, optionally shards it, and runs it.
template <typename Configure>
StatusOr<RunReport> RunConfigured(Configure configure, size_t shards) {
  NvxBuilder builder;
  configure(builder);
  if (shards > 0) {
    builder.Shards(shards);
  }
  auto session = builder.Build();
  if (!session.ok()) {
    return session.status();
  }
  return session->Run();
}

template <typename Configure>
void ExpectShardingEquivalence(Configure configure, const char* what) {
  auto unsharded = RunConfigured(configure, 0);
  ASSERT_TRUE(unsharded.ok()) << what << ": " << unsharded.status().ToString();
  for (size_t k : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::string(what) + " with Shards(" + std::to_string(k) + ")");
    auto sharded = RunConfigured(configure, k);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    EXPECT_EQ(sharded->backend, unsharded->backend);
    EXPECT_EQ(sharded->outcome, unsharded->outcome);
    EXPECT_EQ(sharded->aborted_all, unsharded->aborted_all);
    // Detection attribution must match exactly.
    ASSERT_EQ(sharded->detection.has_value(), unsharded->detection.has_value());
    if (unsharded->detection.has_value()) {
      EXPECT_EQ(sharded->detection->variant, unsharded->detection->variant);
      EXPECT_EQ(sharded->detection->thread, unsharded->detection->thread);
      EXPECT_EQ(sharded->detection->detector, unsharded->detection->detector);
    }
    // Divergence attribution must match exactly (leader-relative).
    ASSERT_EQ(sharded->divergence.has_value(), unsharded->divergence.has_value());
    if (unsharded->divergence.has_value()) {
      EXPECT_EQ(sharded->divergence->variant, unsharded->divergence->variant);
      EXPECT_EQ(sharded->divergence->thread, unsharded->divergence->thread);
      EXPECT_EQ(sharded->divergence->sync_index, unsharded->divergence->sync_index);
      EXPECT_EQ(sharded->divergence->expected, unsharded->divergence->expected);
      EXPECT_EQ(sharded->divergence->actual, unsharded->divergence->actual);
      EXPECT_EQ(sharded->divergence->detail, unsharded->divergence->detail);
    }
    // Shard 0 measures the same baseline the unsharded session does, and
    // per-variant sanitizer load is plan-derived, so both must be identical.
    ASSERT_EQ(sharded->baseline_time.has_value(), unsharded->baseline_time.has_value());
    if (unsharded->baseline_time.has_value()) {
      EXPECT_DOUBLE_EQ(*sharded->baseline_time, *unsharded->baseline_time);
    }
    EXPECT_EQ(sharded->variant_compute_scale, unsharded->variant_compute_scale);
  }
}

TEST(ShardedSessionTest, IdenticalCleanRunMatchesUnsharded) {
  ExpectShardingEquivalence(
      [](NvxBuilder& b) { b.Benchmark(workload::Spec2006()[0]).Variants(6).Seed(11); },
      "identical/clean");
}

TEST(ShardedSessionTest, SelectiveLockstepCleanRunMatchesUnsharded) {
  ExpectShardingEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[1])
            .Variants(5)
            .Lockstep(nxe::LockstepMode::kSelective)
            .Seed(13);
      },
      "identical/selective");
}

TEST(ShardedSessionTest, CheckDistributionDetectionMatchesUnsharded) {
  ExpectShardingEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0])
            .Variants(6)
            .DistributeChecks(san::SanitizerId::kASan)
            .InjectDetection(3, "__asan_report_store")
            .Seed(17);
      },
      "check/detection");
}

TEST(ShardedSessionTest, SanitizerDistributionMatchesUnsharded) {
  ExpectShardingEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[0])  // perlbench: MSan supported
            .Variants(3)
            .DistributeSanitizers(
                {san::SanitizerId::kASan, san::SanitizerId::kMSan, san::SanitizerId::kUBSan})
            .Seed(19);
      },
      "sanitizer/clean");
}

TEST(ShardedSessionTest, DivergenceAttributionMatchesUnsharded) {
  ExpectShardingEquivalence(
      [](NvxBuilder& b) {
        b.Benchmark(workload::Spec2006()[2])
            .Variants(5)
            .InjectDivergence(3, "exfiltrated-secret")
            .Seed(23);
      },
      "identical/divergence");
}

TEST(ShardedSessionTest, MoreShardsThanFollowersSkipsEmptyGroups) {
  // Variants(2) has one follower: Shards(4) degenerates to one real shard
  // (plus skipped empty groups) and must still match the unsharded run.
  ExpectShardingEquivalence(
      [](NvxBuilder& b) { b.Benchmark(workload::Spec2006()[3]).Variants(2).Seed(29); },
      "identical/overprovisioned");
}

TEST(ShardedSessionTest, SingleShardReportIsBitIdentical) {
  // Shards(1) routes through dispatch + merge with one partial: everything,
  // including timing and telemetry, must survive the round-trip.
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(4).Seed(31).MeasureStandalone();
  auto unsharded = builder.Build();
  ASSERT_TRUE(unsharded.ok());
  auto expected = unsharded->Run();
  ASSERT_TRUE(expected.ok());

  auto sharded = builder.Shards(1).Build();
  ASSERT_TRUE(sharded.ok());
  auto actual = sharded->Run();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();

  EXPECT_DOUBLE_EQ(actual->total_time, expected->total_time);
  EXPECT_EQ(actual->variant_finish_time, expected->variant_finish_time);
  EXPECT_EQ(actual->variant_standalone_time, expected->variant_standalone_time);
  EXPECT_EQ(actual->synced_syscalls, expected->synced_syscalls);
  EXPECT_EQ(actual->ignored_syscalls, expected->ignored_syscalls);
  EXPECT_EQ(actual->lockstep_barriers, expected->lockstep_barriers);
  EXPECT_EQ(actual->lock_acquisitions, expected->lock_acquisitions);
}

TEST(ShardedSessionTest, StandaloneTimesScatterAcrossShards) {
  // Each follower's standalone time is measured by the shard that owns it
  // (non-owning leader replicas are skipped, not re-simulated) and must
  // land in the right global slot with the unsharded value.
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0])
      .Variants(5)
      .DistributeChecks(san::SanitizerId::kASan)
      .Seed(43)
      .MeasureStandalone();
  auto unsharded = builder.Build();
  ASSERT_TRUE(unsharded.ok());
  auto expected = unsharded->Run();
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->variant_standalone_time.size(), 5u);

  auto sharded = builder.Shards(2).Build();
  ASSERT_TRUE(sharded.ok());
  auto actual = sharded->Run();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(actual->variant_standalone_time.size(), 5u);
  for (size_t v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(actual->variant_standalone_time[v], expected->variant_standalone_time[v])
        << "variant " << v;
  }
}

// ---------------------------------------------------------------------------
// Sharding composed with the async layer (the TSan-sensitive paths).
// ---------------------------------------------------------------------------

TEST(ShardedSessionTest, ComposesWithAsyncBuildOnOneSharedPool) {
  NvxBuilder builder;
  builder.Benchmark(workload::Spec2006()[0]).Variants(6).Seed(37);
  auto plain = builder.Build();
  ASSERT_TRUE(plain.ok());
  auto expected = plain->Run();
  ASSERT_TRUE(expected.ok());

  auto session = builder.Shards(2).Async(2).Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_STREQ(session->backend_name(), "trace");  // substrate identity kept
  EXPECT_EQ(session->n_variants(), 6u);

  // Concurrent sharded runs through the same shared pool.
  std::vector<StatusOr<RunReport>> reports(4, Status(StatusCode::kInternal, "pending"));
  {
    std::vector<std::thread> callers;
    callers.reserve(reports.size());
    for (auto& slot : reports) {
      callers.emplace_back([&slot, &session] { slot = session->Run(); });
    }
    for (auto& caller : callers) {
      caller.join();
    }
  }
  for (const auto& report : reports) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, expected->outcome);
    EXPECT_DOUBLE_EQ(*report->baseline_time, *expected->baseline_time);
  }
}

TEST(ShardedSessionTest, AsyncSubmissionsDrainOneQueue) {
  CompletionQueue done;
  auto clean = NvxBuilder()
                   .Benchmark(workload::Spec2006()[0])
                   .Variants(4)
                   .Shards(2)
                   .BuildAsync();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto detect = NvxBuilder()
                    .Benchmark(workload::Spec2006()[0])
                    .Variants(4)
                    .Shards(2)
                    .InjectDetection(2, "__asan_report_load")
                    .BuildAsync(clean->pool());
  ASSERT_TRUE(detect.ok()) << detect.status().ToString();

  constexpr uint64_t kClean = 0, kDetect = 1;
  for (uint64_t i = 0; i < 6; ++i) {
    api::RunRequest request;
    request.workload_seed = 50 + i;
    clean->Submit(request, &done, 10 * i + kClean);
    detect->Submit({}, &done, 10 * i + kDetect);
  }
  size_t ok = 0, detected = 0;
  for (size_t i = 0; i < 12; ++i) {
    api::CompletionEvent event = done.Wait();
    ASSERT_TRUE(event.report.ok()) << event.report.status().ToString();
    if (event.token % 10 == kClean) {
      EXPECT_EQ(event.report->outcome, NvxOutcome::kOk);
      ++ok;
    } else {
      EXPECT_EQ(event.report->outcome, NvxOutcome::kDetected);
      EXPECT_EQ(event.report->detection->variant, 2u);
      ++detected;
    }
  }
  EXPECT_EQ(ok, 6u);
  EXPECT_EQ(detected, 6u);
}

TEST(ShardedSessionTest, SingleWorkerPoolCannotStarveItsOwnShards) {
  // A deliberately undersized user pool: the dispatcher occupies the only
  // worker, so its shards can only run because it claims them itself.
  auto pool = std::make_shared<support::ThreadPool>(1);
  auto session = NvxBuilder()
                     .Benchmark(workload::Spec2006()[1])
                     .Variants(4)
                     .Shards(3)
                     .Seed(41)
                     .BuildAsync(pool);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::vector<api::RunHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(session->Submit());
  }
  for (auto& handle : handles) {
    auto report = handle.Wait();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->outcome, NvxOutcome::kOk);
  }
}

TEST(ShardedSessionTest, ObserverBlocksStaySequencedAcrossShardedRuns) {
  std::vector<std::string> events;
  api::Observer observer;
  observer.on_variant_finish = [&events](size_t variant, double) {
    events.push_back("finish" + std::to_string(variant));
  };
  observer.on_incident = [&events](const RunReport& report) {
    EXPECT_EQ(report.outcome, NvxOutcome::kDetected);
    events.push_back("incident");
  };

  constexpr size_t kRuns = 8;
  {
    auto session = NvxBuilder()
                       .Benchmark(workload::Spec2006()[0])
                       .Variants(4)
                       .Shards(2)
                       .InjectDetection(3, "__asan_report_store")
                       .SetObserver(observer)
                       .Async(3)
                       .BuildAsync();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (size_t i = 0; i < kRuns; ++i) {
      session->Submit();
    }
  }  // destructor waits for all runs

  ASSERT_EQ(events.size(), kRuns * 5);
  for (size_t block = 0; block < kRuns; ++block) {
    for (size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(events[block * 5 + v], "finish" + std::to_string(v)) << "block " << block;
    }
    EXPECT_EQ(events[block * 5 + 4], "incident") << "block " << block;
  }
}

}  // namespace
}  // namespace bunshin
