// Tests for check discovery and backward-slicing removal (§4.1).
#include <gtest/gtest.h>

#include "src/ir/interp.h"
#include "src/ir/verifier.h"
#include "src/sanitizer/asan_pass.h"
#include "src/sanitizer/msan_pass.h"
#include "src/sanitizer/ubsan_pass.h"
#include "src/slicing/slicer.h"
#include "tests/testutil.h"

namespace bunshin {
namespace {

// Ground truth: count instructions tagged kCheck (the slicer must not read
// the tag, but tests may).
size_t CountByOrigin(const ir::Function& fn, ir::InstOrigin origin) {
  size_t n = 0;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb.insts) {
      if (inst.origin == origin) {
        ++n;
      }
    }
  }
  return n;
}

TEST(SlicerTest, DiscoversExactlyTheInsertedChecks) {
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  auto stats = pass.Run(module.get());
  ASSERT_TRUE(stats.ok());

  const ir::Function* fn = module->GetFunction("main");
  const auto sites = slicing::DiscoverChecks(*fn);
  EXPECT_EQ(sites.size(), stats->checks_inserted);

  // Every sliced instruction must be tagged kCheck (no original or metadata
  // instruction may ever be deleted), and the branch must be a check branch.
  for (const auto& site : sites) {
    for (ir::InstId id : site.sliced_insts) {
      ir::BlockId block = 0;
      size_t index = 0;
      ASSERT_TRUE(fn->Locate(id, &block, &index));
      EXPECT_EQ(fn->block(block)->insts[index].origin, ir::InstOrigin::kCheck)
          << ir::InstToString(fn->block(block)->insts[index]);
    }
  }
}

TEST(SlicerTest, DiscoveryIgnoresMetadata) {
  // A module instrumented with metadata only (no checks fired in): build
  // ASan instrumentation, remove checks, re-discover: zero sites.
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Function* fn = module->GetFunction("main");
  slicing::RemoveChecks(fn);
  EXPECT_TRUE(slicing::DiscoverChecks(*fn).empty());
  // Metadata is still there.
  EXPECT_GT(CountByOrigin(*fn, ir::InstOrigin::kMetadata), 0u);
}

TEST(SlicerTest, RemovalRestoresBaselineSemantics) {
  auto baseline = testutil::BuildBufferProgram();
  auto instrumented = baseline->Clone();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());

  auto deinstrumented = instrumented->Clone();
  const auto removal = slicing::RemoveChecksInModule(deinstrumented.get());
  EXPECT_GT(removal.checks_removed, 0u);
  ASSERT_TRUE(ir::VerifyModule(*deinstrumented).ok())
      << ir::VerifyModule(*deinstrumented).message();

  ir::Interpreter base_interp(baseline.get());
  ir::Interpreter deinst_interp(deinstrumented.get());
  for (int idx = -1; idx <= 4; ++idx) {
    // Note: includes the OOB inputs — after removal the checks are gone, so
    // the de-instrumented variant behaves exactly like the baseline again.
    ir::ExecResult base = base_interp.Run("main", {idx});
    ir::ExecResult deinst = deinst_interp.Run("main", {idx});
    EXPECT_EQ(base.outcome, deinst.outcome) << "idx=" << idx;
    EXPECT_EQ(base.return_value, deinst.return_value) << "idx=" << idx;
    EXPECT_EQ(base.events, deinst.events) << "idx=" << idx;
  }
}

TEST(SlicerTest, RemovalDeletesAllCheckInstructions) {
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Function* fn = module->GetFunction("main");
  const size_t metadata_before = CountByOrigin(*fn, ir::InstOrigin::kMetadata);
  ASSERT_GT(CountByOrigin(*fn, ir::InstOrigin::kCheck), 0u);

  slicing::RemoveChecks(fn);

  // All check-origin instructions gone except the rewritten branches (the
  // condbr slots become plain unconditional branches, retagged original).
  EXPECT_EQ(CountByOrigin(*fn, ir::InstOrigin::kCheck), 0u);
  // Metadata must be fully preserved (§3.1: removing it breaks the sanitizer).
  EXPECT_EQ(CountByOrigin(*fn, ir::InstOrigin::kMetadata), metadata_before);
}

TEST(SlicerTest, WorksForMsanChecks) {
  auto baseline = testutil::BuildUninitProgram();
  auto instrumented = baseline->Clone();
  san::MsanPass pass;
  ASSERT_TRUE(pass.Run(instrumented.get()).ok());
  auto removed = instrumented->Clone();
  slicing::RemoveChecksInModule(removed.get());
  ASSERT_TRUE(ir::VerifyModule(*removed).ok());

  // After removal, even the buggy input runs to completion (check gone).
  ir::Interpreter interp(removed.get());
  EXPECT_EQ(interp.Run("main", {0}).outcome, ir::Outcome::kReturned);
}

TEST(SlicerTest, WorksForUbsanChecks) {
  auto module = testutil::BuildArithProgram();
  san::UbsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  slicing::RemoveChecksInModule(module.get());
  ASSERT_TRUE(ir::VerifyModule(*module).ok());
  ir::Interpreter interp(module.get());
  // Div-by-zero is UB again (traps) rather than detected.
  EXPECT_EQ(interp.Run("main", {10, 0}).outcome, ir::Outcome::kTrapped);
  EXPECT_EQ(interp.Run("main", {20, 3}).return_value,
            20 + 3 + (20 / 3) + (20LL << 3));
}

TEST(SlicerTest, RemoveUnreachableBlocksCompacts) {
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Function* fn = module->GetFunction("main");
  const auto removal = slicing::RemoveChecks(fn);
  EXPECT_GT(removal.blocks_removed, 0u);
  // Block ids must be dense and valid after compaction.
  for (size_t i = 0; i < fn->blocks().size(); ++i) {
    EXPECT_EQ(fn->blocks()[i].id, static_cast<ir::BlockId>(i));
  }
}

TEST(SlicerTest, NoChecksNoChanges) {
  auto module = testutil::BuildBufferProgram();
  const std::string before = module->ToString();
  slicing::RemoveChecksInModule(module.get());
  EXPECT_EQ(module->ToString(), before);
}

TEST(SlicerTest, SharedValuesSurviveSlicing) {
  // The check condition derives from the address that the program itself
  // uses; the slicer must stop at it and not delete it.
  auto module = testutil::BuildBufferProgram();
  san::AsanPass pass;
  ASSERT_TRUE(pass.Run(module.get()).ok());
  ir::Function* fn = module->GetFunction("main");
  slicing::RemoveChecks(fn);
  ASSERT_TRUE(ir::VerifyModule(*module).ok());
  ir::Interpreter interp(module.get());
  EXPECT_EQ(interp.Run("main", {2}).return_value, 20);
}

}  // namespace
}  // namespace bunshin
