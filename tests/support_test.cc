// Tests for the support utilities: PRNG, stats, tables, status.
#include <gtest/gtest.h>

#include <set>

#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/status.h"
#include "src/support/table.h"

namespace bunshin {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextGaussian(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextExponential(3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(5);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  EXPECT_NE(child_a.NextU64(), child_b.NextU64());
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 6.0, 8.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
  EXPECT_NEAR(stats.stddev(), 2.582, 0.001);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, Means) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(GeometricMean({1, 4}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(Overhead(100, 150), 0.5);
  EXPECT_DOUBLE_EQ(Overhead(0, 150), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::Pct(0.081), "8.1%");
  EXPECT_EQ(Table::Pct(1.07, 0), "107%");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  StatusOr<int> bad(NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bunshin
