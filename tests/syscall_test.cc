// Tests for the virtual syscall layer: classification, records, table.
#include <gtest/gtest.h>

#include "src/sanitizer/sanitizer.h"
#include "src/syscall/syscall.h"

namespace bunshin {
namespace {

using sc::Sysno;

TEST(SyscallTest, WriteRelatedClassification) {
  EXPECT_TRUE(sc::IsIoWriteRelated(Sysno::kWrite));
  EXPECT_TRUE(sc::IsIoWriteRelated(Sysno::kSend));
  EXPECT_TRUE(sc::IsIoWriteRelated(Sysno::kExecve));
  EXPECT_FALSE(sc::IsIoWriteRelated(Sysno::kRead));
  EXPECT_FALSE(sc::IsIoWriteRelated(Sysno::kMmap));
}

TEST(SyscallTest, MemoryManagementClassification) {
  for (Sysno no : {Sysno::kMmap, Sysno::kMunmap, Sysno::kMprotect, Sysno::kMadvise, Sysno::kBrk}) {
    EXPECT_TRUE(sc::IsMemoryManagement(no));
    EXPECT_FALSE(sc::IsSyncRelevant(no)) << sc::SysnoName(no);
  }
  EXPECT_FALSE(sc::IsMemoryManagement(Sysno::kWrite));
}

TEST(SyscallTest, SynccallNeverCompared) {
  EXPECT_FALSE(sc::IsSyncRelevant(Sysno::kSynccall));
}

TEST(SyscallTest, VirtualizedSyscalls) {
  EXPECT_TRUE(sc::IsVirtualized(Sysno::kGettimeofday));
  EXPECT_TRUE(sc::IsVirtualized(Sysno::kGetrandom));
  EXPECT_FALSE(sc::IsVirtualized(Sysno::kRead));
}

TEST(SyscallTest, EverySysnoHasAName) {
  for (size_t i = 0; i < static_cast<size_t>(Sysno::kCount); ++i) {
    EXPECT_STRNE(sc::SysnoName(static_cast<Sysno>(i)), "?");
  }
}

TEST(SyscallTest, RecordComparison) {
  sc::SyscallRecord a;
  a.no = Sysno::kWrite;
  a.args = {1, 64, 0, 0, 0, 0};
  a.payload_digest = sc::DigestString("hello");
  sc::SyscallRecord b = a;
  EXPECT_TRUE(a.SameRequest(b));
  b.payload_digest = sc::DigestString("hellp");
  EXPECT_FALSE(a.SameRequest(b));  // one byte of payload differs
  b = a;
  b.args[1] = 65;
  EXPECT_FALSE(a.SameRequest(b));
  b = a;
  b.result = 99;  // results are not part of the request comparison
  EXPECT_TRUE(a.SameRequest(b));
}

TEST(SyscallTest, DigestIsStableAndSensitive) {
  EXPECT_EQ(sc::DigestString("abc"), sc::DigestString("abc"));
  EXPECT_NE(sc::DigestString("abc"), sc::DigestString("abd"));
  EXPECT_NE(sc::DigestString(""), sc::DigestString("a"));
}

TEST(SyscallTest, TablePatchRestore) {
  sc::SyscallTable table;
  EXPECT_EQ(table.patched_count(), 0u);
  table.Patch(Sysno::kWrite);
  EXPECT_TRUE(table.IsPatched(Sysno::kWrite));
  EXPECT_FALSE(table.IsPatched(Sysno::kRead));
  table.PatchAll();
  EXPECT_EQ(table.patched_count(), static_cast<size_t>(Sysno::kCount));
  table.RestoreAll();
  EXPECT_EQ(table.patched_count(), 0u);
}

TEST(SyscallTest, ParseIntroducedSyscall) {
  const auto mmap_rec = sc::ParseIntroducedSyscall("mmap:shadow");
  EXPECT_EQ(mmap_rec.no, Sysno::kMmap);
  EXPECT_EQ(mmap_rec.payload_digest, sc::DigestString("shadow"));

  const auto proc_rec = sc::ParseIntroducedSyscall("read:/proc/self/maps");
  EXPECT_EQ(proc_rec.no, Sysno::kRead);

  const auto bare = sc::ParseIntroducedSyscall("write");
  EXPECT_EQ(bare.no, Sysno::kWrite);
  EXPECT_EQ(bare.payload_digest, 0u);
}

TEST(SyscallTest, CatalogIntroducedSyscallsAllParse) {
  for (const auto& info : san::AllSanitizers()) {
    for (const auto* list :
         {&info.introduced.pre_launch, &info.introduced.in_execution, &info.introduced.post_exit}) {
      for (const auto& entry : *list) {
        const auto rec = sc::ParseIntroducedSyscall(entry);
        EXPECT_LT(static_cast<size_t>(rec.no), static_cast<size_t>(Sysno::kCount));
      }
    }
  }
}

}  // namespace
}  // namespace bunshin
