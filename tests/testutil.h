// Shared IR test programs used across the test suite.
#ifndef BUNSHIN_TESTS_TESTUTIL_H_
#define BUNSHIN_TESTS_TESTUTIL_H_

#include <memory>

#include "src/ir/builder.h"
#include "src/ir/ir.h"

namespace bunshin {
namespace testutil {

// main(idx):
//   buf = alloca 4; buf[i] = i*10 for i in 0..3;
//   v = load buf[idx];          // OOB when idx outside [0,4): classic overflow
//   print(v); return v;
inline std::unique_ptr<ir::Module> BuildBufferProgram() {
  auto module = std::make_unique<ir::Module>();
  ir::Function* fn = module->AddFunction("main", 1);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  const ir::Value buf = b.Alloca(ir::Value::Const(4));
  for (int i = 0; i < 4; ++i) {
    b.Store(b.Add(buf, ir::Value::Const(i)), ir::Value::Const(i * 10));
  }
  const ir::Value addr = b.Add(buf, ir::Value::Arg(0));
  const ir::Value v = b.Load(addr);
  b.Call("print", {v});
  b.Ret(v);
  return module;
}

// main(a, b):
//   s = a + b; q = a / b; t = a << b; print(s+q+t); return s+q+t
// Triggers signed overflow / div-by-zero / bad shift for suitable inputs.
inline std::unique_ptr<ir::Module> BuildArithProgram() {
  auto module = std::make_unique<ir::Module>();
  ir::Function* fn = module->AddFunction("main", 2);
  const ir::BlockId entry = fn->AddBlock("entry");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  const ir::Value s = b.Add(ir::Value::Arg(0), ir::Value::Arg(1));
  const ir::Value q = b.Div(ir::Value::Arg(0), ir::Value::Arg(1));
  const ir::Value t = b.Shl(ir::Value::Arg(0), ir::Value::Arg(1));
  const ir::Value sum = b.Add(b.Add(s, q), t);
  b.Call("print", {sum});
  b.Ret(sum);
  return module;
}

// main(flag):
//   buf = alloca 2;
//   if (flag) store buf[0], 7;
//   v = load buf[0];             // uninitialized when flag == 0
//   print(v); return v
inline std::unique_ptr<ir::Module> BuildUninitProgram() {
  auto module = std::make_unique<ir::Module>();
  ir::Function* fn = module->AddFunction("main", 1);
  const ir::BlockId entry = fn->AddBlock("entry");
  const ir::BlockId init = fn->AddBlock("init");
  const ir::BlockId cont = fn->AddBlock("cont");
  ir::IrBuilder b(fn);
  b.SetInsertPoint(entry);
  const ir::Value buf = b.Alloca(ir::Value::Const(2));
  const ir::Value cond = b.Cmp(ir::CmpPred::kNe, ir::Value::Arg(0), ir::Value::Const(0));
  b.CondBr(cond, init, cont);
  b.SetInsertPoint(init);
  b.Store(buf, ir::Value::Const(7));
  b.Br(cont);
  b.SetInsertPoint(cont);
  const ir::Value v = b.Load(buf);
  b.Call("print", {v});
  b.Ret(v);
  return module;
}

// A three-function program for check distribution:
//   hot(n): loop summing i*i for i<n (heavy, has memory traffic)
//   warm(x): buf math with loads/stores
//   cold(x): one store/load
//   main(n): print(hot(n) + warm(n) + cold(n))
inline std::unique_ptr<ir::Module> BuildMultiFunctionProgram() {
  auto module = std::make_unique<ir::Module>();

  {
    ir::Function* fn = module->AddFunction("hot", 1);
    const ir::BlockId entry = fn->AddBlock("entry");
    const ir::BlockId loop = fn->AddBlock("loop");
    const ir::BlockId body = fn->AddBlock("body");
    const ir::BlockId done = fn->AddBlock("done");
    ir::IrBuilder b(fn);
    b.SetInsertPoint(entry);
    const ir::Value acc = b.Alloca(ir::Value::Const(1));
    const ir::Value idx = b.Alloca(ir::Value::Const(1));
    b.Store(acc, ir::Value::Const(0));
    b.Store(idx, ir::Value::Const(0));
    b.Br(loop);
    b.SetInsertPoint(loop);
    const ir::Value i = b.Load(idx);
    const ir::Value cond = b.Cmp(ir::CmpPred::kLt, i, ir::Value::Arg(0));
    b.CondBr(cond, body, done);
    b.SetInsertPoint(body);
    const ir::Value sq = b.Mul(i, i);
    b.Store(acc, b.Add(b.Load(acc), sq));
    b.Store(idx, b.Add(i, ir::Value::Const(1)));
    b.Br(loop);
    b.SetInsertPoint(done);
    b.Ret(b.Load(acc));
  }
  {
    ir::Function* fn = module->AddFunction("warm", 1);
    const ir::BlockId entry = fn->AddBlock("entry");
    ir::IrBuilder b(fn);
    b.SetInsertPoint(entry);
    const ir::Value buf = b.Alloca(ir::Value::Const(3));
    b.Store(buf, ir::Value::Arg(0));
    b.Store(b.Add(buf, ir::Value::Const(1)), b.Mul(ir::Value::Arg(0), ir::Value::Const(3)));
    b.Store(b.Add(buf, ir::Value::Const(2)),
            b.Add(b.Load(buf), b.Load(b.Add(buf, ir::Value::Const(1)))));
    b.Ret(b.Load(b.Add(buf, ir::Value::Const(2))));
  }
  {
    ir::Function* fn = module->AddFunction("cold", 1);
    const ir::BlockId entry = fn->AddBlock("entry");
    ir::IrBuilder b(fn);
    b.SetInsertPoint(entry);
    const ir::Value buf = b.Alloca(ir::Value::Const(1));
    b.Store(buf, ir::Value::Arg(0));
    b.Ret(b.Load(buf));
  }
  {
    ir::Function* fn = module->AddFunction("main", 1);
    const ir::BlockId entry = fn->AddBlock("entry");
    ir::IrBuilder b(fn);
    b.SetInsertPoint(entry);
    const ir::Value h = b.Call("hot", {ir::Value::Arg(0)});
    const ir::Value w = b.Call("warm", {ir::Value::Arg(0)});
    const ir::Value c = b.Call("cold", {ir::Value::Arg(0)});
    const ir::Value sum = b.Add(b.Add(h, w), c);
    b.Call("print", {sum});
    b.Ret(sum);
  }
  return module;
}

}  // namespace testutil
}  // namespace bunshin

#endif  // BUNSHIN_TESTS_TESTUTIL_H_
