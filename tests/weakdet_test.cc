// Real-thread tests for the weak-determinism (synccall) runtime: follower
// variants must observe the leader's lock-acquisition total order.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "src/nxe/weakdet.h"
#include "src/support/rng.h"

namespace bunshin {
namespace {

TEST(WeakDetTest, OrderRecordedByLeader) {
  nxe::SynccallRuntime runtime(1);
  runtime.LeaderAcquire(2);
  runtime.LeaderAcquire(0);
  runtime.LeaderAcquire(1);
  EXPECT_EQ(runtime.Order(), (std::vector<uint32_t>{2, 0, 1}));
}

TEST(WeakDetTest, FollowerTryAcquireRespectsOrder) {
  nxe::SynccallRuntime runtime(1);
  runtime.LeaderAcquire(1);
  runtime.LeaderAcquire(0);
  EXPECT_FALSE(runtime.FollowerTryAcquire(0, 0));  // 1 must go first
  EXPECT_TRUE(runtime.FollowerTryAcquire(0, 1));
  EXPECT_TRUE(runtime.FollowerTryAcquire(0, 0));
}

// The core property (§3.3): whatever interleaving the leader's threads
// produce, every follower replays the same total order of acquisitions.
TEST(WeakDetTest, FollowersReplayLeaderOrder) {
  constexpr size_t kThreads = 4;
  constexpr size_t kAcquisitionsPerThread = 200;
  constexpr size_t kFollowers = 2;

  nxe::SynccallRuntime runtime(kFollowers);

  // Leader: each thread acquires with its own EGID many times, racing.
  {
    std::vector<std::thread> leader_threads;
    for (size_t t = 0; t < kThreads; ++t) {
      leader_threads.emplace_back([&, t] {
        Rng rng(t + 1);
        for (size_t i = 0; i < kAcquisitionsPerThread; ++i) {
          runtime.LeaderAcquire(static_cast<uint32_t>(t));
          // Unsynchronized busy work to shuffle the interleaving.
          volatile uint64_t x = rng.NextBounded(200);
          while (x > 0) {
            x = x - 1;
          }
        }
      });
    }
    for (auto& t : leader_threads) {
      t.join();
    }
  }
  const std::vector<uint32_t> order = runtime.Order();
  ASSERT_EQ(order.size(), kThreads * kAcquisitionsPerThread);

  // Followers: per-thread acquisition counts must be consumable exactly in
  // the recorded order. Each follower runs kThreads real threads that only
  // know "I am EGID t and I acquire N times".
  for (size_t f = 0; f < kFollowers; ++f) {
    std::vector<uint32_t> replayed;
    std::mutex replay_mu;
    std::vector<std::thread> follower_threads;
    for (size_t t = 0; t < kThreads; ++t) {
      follower_threads.emplace_back([&, t] {
        for (size_t i = 0; i < kAcquisitionsPerThread; ++i) {
          runtime.FollowerAcquire(f, static_cast<uint32_t>(t));
          std::lock_guard<std::mutex> lock(replay_mu);
          replayed.push_back(static_cast<uint32_t>(t));
        }
      });
    }
    for (auto& t : follower_threads) {
      t.join();
    }
    EXPECT_EQ(replayed, order) << "follower " << f << " diverged from leader order";
  }
}

TEST(WeakDetTest, DetMutexEnforcesLeaderOrderAcrossFollowerThreads) {
  nxe::SynccallRuntime runtime(1);
  nxe::DetMutex mu_a(&runtime, 0);
  nxe::DetMutex mu_b(&runtime, 1);

  // Leader acquires B then A.
  mu_b.LockAsLeader();
  mu_b.Unlock();
  mu_a.LockAsLeader();
  mu_a.Unlock();

  // Follower threads try A-first and B-first concurrently; the runtime must
  // force B before A regardless of scheduling.
  std::vector<int> sequence;
  std::mutex seq_mu;
  std::thread ta([&] {
    mu_a.LockAsFollower(0);
    {
      std::lock_guard<std::mutex> lock(seq_mu);
      sequence.push_back(0);
    }
    mu_a.Unlock();
  });
  std::thread tb([&] {
    mu_b.LockAsFollower(0);
    {
      std::lock_guard<std::mutex> lock(seq_mu);
      sequence.push_back(1);
    }
    mu_b.Unlock();
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sequence, (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace bunshin
