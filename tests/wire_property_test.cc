// Property sweep over the wire format (src/net/wire.h): randomized
// VariantPlans generated from a seeded rng must round-trip exactly —
// Decode(Encode(p)) re-encodes to the same bytes and preserves CacheKey() —
// and every truncation of a valid buffer must return a definite error. Bit
// flips anywhere in a valid buffer must never crash or over-read (they may
// decode to a different valid value; lengths, counts, and enums are the
// fields that must reject). Runs under AddressSanitizer in CI, where an
// over-read is a hard failure rather than a silent one.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/api/plan.h"
#include "src/net/wire.h"
#include "src/sanitizer/sanitizer.h"

namespace bunshin {
namespace {

// ---------------------------------------------------------------------------
// Seeded generators.
// ---------------------------------------------------------------------------

std::string RandomName(std::mt19937_64& rng) {
  // Include the cache-key separator characters on purpose: the key's
  // length-prefixing and the wire's length-prefixing must both survive them.
  static constexpr char kAlphabet[] = "abcXYZ019|:/=.-_";
  std::uniform_int_distribution<size_t> len(0, 24);
  std::uniform_int_distribution<size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string name;
  const size_t n = len(rng);
  for (size_t i = 0; i < n; ++i) {
    name.push_back(kAlphabet[pick(rng)]);
  }
  return name;
}

double RandomDouble(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  switch (rng() % 8) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 1e-300;  // subnormal-adjacent: %.17g and bit-cast must both hold
    default:
      return dist(rng);
  }
}

workload::BenchmarkSpec RandomBenchmark(std::mt19937_64& rng) {
  workload::BenchmarkSpec bench;
  bench.name = RandomName(rng);
  bench.suite = static_cast<workload::Suite>(rng() % 4);
  bench.n_functions = rng() % 500;
  bench.hottest_share = RandomDouble(rng);
  bench.func_rate_sigma = RandomDouble(rng);
  bench.total_compute = RandomDouble(rng);
  bench.n_syscalls = rng() % 10000;
  bench.io_write_frac = RandomDouble(rng);
  bench.noise_rel_sigma = RandomDouble(rng);
  bench.threads = 1 + rng() % 8;
  bench.locks_per_kilo = RandomDouble(rng);
  bench.barriers = rng() % 16;
  bench.cache_sensitivity = RandomDouble(rng);
  bench.overheads.asan = RandomDouble(rng);
  bench.overheads.msan = RandomDouble(rng);
  bench.overheads.ubsan = RandomDouble(rng);
  bench.overheads.msan_supported = rng() % 2 == 0;
  if (rng() % 4 == 0) {
    bench.unsupported_reason = RandomName(rng);
  }
  return bench;
}

workload::ServerSpec RandomServer(std::mt19937_64& rng) {
  workload::ServerSpec server;
  server.name = RandomName(rng);
  server.threads = 1 + rng() % 8;
  server.requests = rng() % 1000;
  server.file_kb = rng() % 4096;
  server.concurrency = 1 + rng() % 64;
  server.noise_rel_sigma = RandomDouble(rng);
  return server;
}

api::VariantPlan RandomPlan(std::mt19937_64& rng) {
  api::VariantPlan plan;
  if (rng() % 2 == 0) {
    plan.benchmark = RandomBenchmark(rng);
  } else {
    plan.server = RandomServer(rng);
  }
  plan.strategy = static_cast<api::DistributionStrategy>(rng() % 4);
  plan.seed = rng();
  plan.measure_standalone = rng() % 2 == 0;
  plan.requested_variants = rng() % 16;
  plan.check_sanitizer = static_cast<san::SanitizerId>(rng() % 8);
  const size_t n_sans = rng() % 4;
  for (size_t i = 0; i < n_sans; ++i) {
    plan.sanitizers.push_back(static_cast<san::SanitizerId>(rng() % 8));
  }
  plan.partition_options.algorithm = static_cast<partition::Algorithm>(rng() % 4);
  plan.partition_options.max_nodes = rng() % 1000000;
  plan.partition_options.epsilon = RandomDouble(rng);
  plan.engine_config.mode = static_cast<nxe::LockstepMode>(rng() % 2);
  plan.engine_config.ring_capacity = 1 + rng() % 1024;
  plan.engine_config.cache_sensitivity = RandomDouble(rng);
  plan.engine_config.contention_variants = rng() % 16;
  plan.engine_config.cost.kernel_syscall = RandomDouble(rng);
  plan.engine_config.cost.trap_hook = RandomDouble(rng);
  plan.engine_config.cost.sync_slot = RandomDouble(rng);
  plan.engine_config.cost.result_fetch = RandomDouble(rng);
  plan.engine_config.cost.wait_wakeup = RandomDouble(rng);
  plan.engine_config.cost.synccall = RandomDouble(rng);
  plan.engine_config.cost.lock_primitive = RandomDouble(rng);
  plan.engine_config.cost.cores = static_cast<int>(rng() % 64);
  plan.engine_config.cost.llc_alpha = RandomDouble(rng);
  plan.engine_config.cost.llc_exponent = RandomDouble(rng);
  plan.engine_config.cost.background_load = RandomDouble(rng);
  plan.engine_config.cost.load_wait_coeff = RandomDouble(rng);

  const size_t n_specs = rng() % 6;
  for (size_t i = 0; i < n_specs; ++i) {
    workload::VariantSpec spec;
    spec.name = RandomName(rng);
    spec.compute_scale = RandomDouble(rng);
    spec.jitter_seed = rng();
    const size_t n = rng() % 3;
    for (size_t s = 0; s < n; ++s) {
      spec.sanitizers.push_back(static_cast<san::SanitizerId>(rng() % 8));
    }
    plan.specs.push_back(std::move(spec));
    plan.labels.push_back(RandomName(rng));  // decode demands one per spec
  }
  if (rng() % 3 == 0) {
    distribution::CheckDistributionPlan check;
    check.n_variants = rng() % 8;
    const size_t n_funcs = rng() % 4;
    for (size_t i = 0; i < n_funcs; ++i) {
      std::vector<std::string> funcs;
      for (size_t f = 0; f < rng() % 4; ++f) {
        funcs.push_back(RandomName(rng));
      }
      check.protected_functions.push_back(std::move(funcs));
      check.predicted_overhead.push_back(RandomDouble(rng));
    }
    const size_t n_bins = rng() % 4;
    for (size_t i = 0; i < n_bins; ++i) {
      std::vector<size_t> bin;
      for (size_t b = 0; b < rng() % 5; ++b) {
        bin.push_back(rng() % 100);
      }
      check.partition.bins.push_back(std::move(bin));
      check.partition.bin_sums.push_back(RandomDouble(rng));
    }
    check.partition.total = RandomDouble(rng);
    check.partition.max_sum = RandomDouble(rng);
    check.partition.balance_ratio = RandomDouble(rng);
    plan.check_plan = std::move(check);
  }
  const size_t n_groups = rng() % 3;
  for (size_t i = 0; i < n_groups; ++i) {
    std::vector<std::string> group;
    for (size_t g = 0; g < rng() % 3; ++g) {
      group.push_back(RandomName(rng));
    }
    plan.sanitizer_groups.push_back(std::move(group));
  }
  const size_t n_detect = rng() % 3;
  for (size_t i = 0; i < n_detect; ++i) {
    plan.detect_injections.push_back({rng() % 16, RandomName(rng)});
  }
  const size_t n_diverge = rng() % 3;
  for (size_t i = 0; i < n_diverge; ++i) {
    plan.diverge_injections.push_back({rng() % 16, RandomName(rng)});
  }
  return plan;
}

api::PartialReport RandomPartial(std::mt19937_64& rng, size_t n_variants) {
  api::PartialReport partial;
  // A valid coverage: a subset of [0, n_variants) without duplicates.
  for (size_t global = 0; global < n_variants; ++global) {
    if (global == 0 || rng() % 2 == 0) {
      partial.variant_index.push_back(global);
    }
  }
  partial.owns_baseline = rng() % 2 == 0;
  api::RunReport& report = partial.report;
  report.backend = "trace";
  report.outcome = api::NvxOutcome::kOk;
  report.aborted_all = false;
  report.total_time = RandomDouble(rng);
  if (rng() % 2 == 0) {
    report.baseline_time = RandomDouble(rng);
  }
  for (size_t i = 0; i < partial.variant_index.size(); ++i) {
    report.variant_finish_time.push_back(RandomDouble(rng));
    report.variant_compute_scale.push_back(RandomDouble(rng));
  }
  if (!partial.variant_index.empty()) {
    switch (rng() % 3) {
      case 0:
        break;
      case 1:
        report.outcome = api::NvxOutcome::kDetected;
        report.detection =
            api::Detection{rng() % partial.variant_index.size(), rng() % 4, RandomName(rng)};
        break;
      case 2:
        report.outcome = api::NvxOutcome::kDiverged;
        report.divergence = api::Divergence{rng() % partial.variant_index.size(),
                                            rng() % 4,
                                            rng() % 1000,
                                            RandomName(rng),
                                            RandomName(rng),
                                            RandomName(rng)};
        break;
    }
  }
  report.synced_syscalls = rng() % 100000;
  report.ignored_syscalls = rng() % 1000;
  report.lockstep_barriers = rng() % 1000;
  report.lock_acquisitions = rng() % 1000;
  report.avg_syscall_gap = RandomDouble(rng);
  report.max_syscall_gap = rng() % 100000;
  return partial;
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

constexpr int kPlans = 200;

TEST(WirePropertyTest, PlanRoundTripIsExact) {
  std::mt19937_64 rng(0xB00B5EED);
  for (int i = 0; i < kPlans; ++i) {
    const api::VariantPlan plan = RandomPlan(rng);
    const std::string bytes = net::EncodeVariantPlan(plan);
    auto decoded = net::DecodeVariantPlan(bytes);
    ASSERT_TRUE(decoded.ok()) << "plan " << i << ": " << decoded.status().ToString();
    // Byte equality of the re-encode implies every field survived (the
    // codec writes all of them, and == on NaN-bearing doubles would lie).
    EXPECT_EQ(net::EncodeVariantPlan(*decoded), bytes) << "plan " << i;
    EXPECT_EQ(decoded->CacheKey(), plan.CacheKey()) << "plan " << i;
  }
}

TEST(WirePropertyTest, EveryTruncationOfAPlanErrors) {
  std::mt19937_64 rng(0xFACADE);
  for (int i = 0; i < 20; ++i) {
    const std::string bytes = net::EncodeVariantPlan(RandomPlan(rng));
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = net::DecodeVariantPlan(std::string_view(bytes).substr(0, cut));
      EXPECT_FALSE(decoded.ok()) << "plan " << i << " cut at " << cut << "/" << bytes.size();
    }
  }
}

TEST(WirePropertyTest, BitFlipsNeverCrashPlanDecode) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 20; ++i) {
    const std::string bytes = net::EncodeVariantPlan(RandomPlan(rng));
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int bit : {0, 3, 7}) {
        std::string corrupt = bytes;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
        // Must terminate with either a definite error or a benign decode —
        // never a crash, hang, or (under ASan) an out-of-bounds read.
        auto decoded = net::DecodeVariantPlan(corrupt);
        if (decoded.ok()) {
          net::EncodeVariantPlan(*decoded);  // and the result is re-encodable
        }
      }
    }
  }
}

TEST(WirePropertyTest, FrameDecodeSurvivesTruncationAndFlips) {
  std::mt19937_64 rng(0x5EED);
  for (int i = 0; i < 50; ++i) {
    net::Frame frame;
    frame.type = static_cast<net::MessageType>(1 + rng() % 4);
    frame.request_id = rng();
    frame.payload = RandomName(rng);
    const std::string bytes = net::EncodeFrame(frame);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(net::DecodeFrameBuffer(std::string_view(bytes).substr(0, cut)).ok());
    }
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
      (void)net::DecodeFrameBuffer(corrupt);  // definite result, no crash
    }
  }
}

TEST(WirePropertyTest, PartialReportRoundTripAndTruncation) {
  std::mt19937_64 rng(0xDECADE);
  for (int i = 0; i < kPlans; ++i) {
    const size_t n_variants = 1 + rng() % 8;
    const api::PartialReport partial = RandomPartial(rng, n_variants);
    const std::string bytes = net::EncodePartialReport(partial);
    auto decoded = net::DecodePartialReport(bytes, n_variants);
    ASSERT_TRUE(decoded.ok()) << "partial " << i << ": " << decoded.status().ToString();
    EXPECT_EQ(net::EncodePartialReport(*decoded), bytes) << "partial " << i;
    if (i < 20) {
      for (size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_FALSE(net::DecodePartialReport(std::string_view(bytes).substr(0, cut), n_variants)
                         .ok())
            << "partial " << i << " cut at " << cut;
      }
    }
  }
}

}  // namespace
}  // namespace bunshin
