// Tests for the workload catalog and trace generation invariants.
#include <gtest/gtest.h>

#include "src/nxe/engine.h"
#include "src/workload/tracegen.h"
#include "src/workload/workload.h"

namespace bunshin {
namespace {

TEST(WorkloadCatalogTest, SuitesMatchThePaper) {
  EXPECT_EQ(workload::Spec2006().size(), 19u);     // the 19 C/C++ SPEC programs
  EXPECT_EQ(workload::Splash2x().size(), 13u);     // all of SPLASH-2x
  EXPECT_EQ(workload::Parsec().size(), 13u);       // all of PARSEC
  EXPECT_EQ(workload::ParsecSupported().size(), 6u);  // §5.1: six run
}

TEST(WorkloadCatalogTest, CalibratedAveragesNearPaper) {
  double asan_sum = 0.0;
  double ubsan_sum = 0.0;
  for (const auto& spec : workload::Spec2006()) {
    asan_sum += spec.overheads.asan;
    ubsan_sum += spec.overheads.ubsan;
  }
  EXPECT_NEAR(asan_sum / 19.0, 1.07, 0.05);   // §5.4: 107%
  EXPECT_NEAR(ubsan_sum / 19.0, 2.28, 0.10);  // §5.5: 228%
}

TEST(WorkloadCatalogTest, OutliersAndExceptionsPresent) {
  EXPECT_GT(workload::FindBenchmark("hmmer")->hottest_share, 0.9);
  EXPECT_GT(workload::FindBenchmark("lbm")->hottest_share, 0.9);
  EXPECT_FALSE(workload::FindBenchmark("gcc")->overheads.msan_supported);
  EXPECT_EQ(workload::FindBenchmark("nonexistent"), nullptr);
}

// The N-version invariant: all variants of a benchmark must issue the same
// sync-relevant syscall sequence regardless of scale/jitter/sanitizers.
TEST(TracegenTest, SyncRelevantSequenceIdenticalAcrossVariants) {
  const auto& bench = workload::Spec2006()[0];
  workload::VariantSpec a;
  a.jitter_seed = 1;
  workload::VariantSpec b;
  b.jitter_seed = 99;
  b.compute_scale = 2.5;
  b.sanitizers = {san::SanitizerId::kASan};

  const auto ta = workload::BuildTrace(bench, a, 5);
  const auto tb = workload::BuildTrace(bench, b, 5);
  ASSERT_EQ(ta.threads.size(), tb.threads.size());
  for (size_t t = 0; t < ta.threads.size(); ++t) {
    std::vector<sc::SyscallRecord> sa;
    std::vector<sc::SyscallRecord> sb;
    for (const auto& act : ta.threads[t].actions) {
      if (act.kind == nxe::ActionKind::kSyscall && sc::IsSyncRelevant(act.syscall.no)) {
        sa.push_back(act.syscall);
      }
    }
    for (const auto& act : tb.threads[t].actions) {
      if (act.kind == nxe::ActionKind::kSyscall && sc::IsSyncRelevant(act.syscall.no)) {
        sb.push_back(act.syscall);
      }
    }
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_TRUE(sa[i].SameRequest(sb[i])) << "thread " << t << " index " << i;
    }
  }
}

TEST(TracegenTest, SanitizerVariantsCarryRuntimeSyscalls) {
  const auto& bench = workload::Spec2006()[1];
  workload::VariantSpec plain;
  workload::VariantSpec asan;
  asan.sanitizers = {san::SanitizerId::kASan};
  const auto tp = workload::BuildTrace(bench, plain, 5);
  const auto ta = workload::BuildTrace(bench, asan, 5);
  EXPECT_TRUE(tp.pre_main.empty());
  EXPECT_FALSE(ta.pre_main.empty());
  EXPECT_FALSE(ta.post_exit.empty());
  // The ASan variant has extra in-execution mmap/madvise actions.
  EXPECT_GT(ta.TotalActions(), tp.TotalActions());
}

TEST(TracegenTest, SameSeedSameTrace) {
  const auto& bench = workload::Splash2x()[0];
  workload::VariantSpec spec;
  const auto a = workload::BuildTrace(bench, spec, 5);
  const auto b = workload::BuildTrace(bench, spec, 5);
  ASSERT_EQ(a.TotalActions(), b.TotalActions());
  EXPECT_DOUBLE_EQ(a.TotalComputeCost(), b.TotalComputeCost());
}

TEST(TracegenTest, JitterSeedChangesOnlyCompute) {
  const auto& bench = workload::Spec2006()[2];
  workload::VariantSpec a;
  a.jitter_seed = 1;
  workload::VariantSpec b;
  b.jitter_seed = 2;
  const auto ta = workload::BuildTrace(bench, a, 5);
  const auto tb = workload::BuildTrace(bench, b, 5);
  EXPECT_EQ(ta.TotalActions(), tb.TotalActions());
  EXPECT_NE(ta.TotalComputeCost(), tb.TotalComputeCost());
}

TEST(TracegenTest, MultithreadedTraceHasLocksAndBarriers) {
  const auto& bench = workload::Splash2x()[9];  // radiosity
  workload::VariantSpec spec;
  const auto trace = workload::BuildTrace(bench, spec, 5);
  ASSERT_EQ(trace.threads.size(), 4u);
  size_t locks = 0;
  size_t barriers = 0;
  for (const auto& thread : trace.threads) {
    for (const auto& act : thread.actions) {
      locks += act.kind == nxe::ActionKind::kLockAcquire ? 1 : 0;
      barriers += act.kind == nxe::ActionKind::kBarrier ? 1 : 0;
    }
  }
  EXPECT_GT(locks, 0u);
  EXPECT_EQ(barriers, bench.barriers * trace.threads.size());
}

TEST(TracegenTest, ServerTraceRequestStructure) {
  workload::ServerSpec server;
  server.requests = 8;
  server.file_kb = 1024;
  workload::VariantSpec spec;
  const auto trace = workload::BuildServerTrace(server, spec, 5);
  size_t writes = 0;
  size_t accepts = 0;
  for (const auto& act : trace.threads[0].actions) {
    if (act.kind != nxe::ActionKind::kSyscall) {
      continue;
    }
    writes += act.syscall.no == sc::Sysno::kWrite ? 1 : 0;
    accepts += act.syscall.no == sc::Sysno::kAccept ? 1 : 0;
  }
  EXPECT_EQ(accepts, 8u);
  EXPECT_EQ(writes, 8u * 16u);  // 16 chunks per 1MB response
}

TEST(TracegenTest, IdenticalVariantsRunCleanUnderEngine) {
  // Property sweep: every supported benchmark must complete with no false
  // positives under both modes (the §5.1 robustness experiment).
  nxe::Engine strict(nxe::EngineConfig{});
  nxe::EngineConfig sel_config;
  sel_config.mode = nxe::LockstepMode::kSelective;
  nxe::Engine selective(sel_config);
  auto check = [&](const workload::BenchmarkSpec& spec) {
    auto variants = workload::BuildIdenticalVariants(spec, 3, 8);
    auto r1 = strict.Run(variants);
    auto r2 = selective.Run(variants);
    ASSERT_TRUE(r1.ok()) << spec.name;
    ASSERT_TRUE(r2.ok()) << spec.name;
    EXPECT_TRUE(r1->completed) << spec.name;
    EXPECT_TRUE(r2->completed) << spec.name;
  };
  for (const auto& spec : workload::Spec2006()) {
    check(spec);
  }
  for (const auto& spec : workload::Splash2x()) {
    check(spec);
  }
  for (const auto& spec : workload::ParsecSupported()) {
    check(spec);
  }
}

}  // namespace
}  // namespace bunshin
