// nvx_analyze: offline front end of the static plan & trace analyzer
// (src/analysis/). The same rule catalog that gates NvxBuilder::Build() and
// net::ExecutorServer runs here against plan files and seeded trace corpora,
// so CI can prove coverage/deadlock-freedom for committed artifacts without
// executing anything.
//
//   nvx_analyze [--seed S] <plan-file>...
//       Decode each wire-format VariantPlan file, run the analyzer, print the
//       full diagnostic listing. Exit 1 if any file carries errors (or fails
//       to decode), 0 otherwise. --seed overrides the workload seed the
//       liveness rules analyze at (mirror of RunRequest::workload_seed).
//
//   nvx_analyze --lint <plan-file>...
//       Expectation-checked mode for CI: a file named ok_*.plan must analyze
//       clean, a file named bad_*.plan must carry at least one error. Exit 1
//       on any violated expectation.
//
//   nvx_analyze --write-corpus <dir>
//       Regenerate the committed fixture corpus (corpus/plans/): well-formed
//       plans for every distribution strategy plus hostile mutants
//       (coverage gaps/overlaps, conflicting sanitizer groups, out-of-range
//       injections, deadlock-shaped engine configs). Each fixture is
//       self-checked against its ok_/bad_ expectation before writing.
//
//   nvx_analyze --seeded N
//       Analyze N seeded random engine sessions (the shared corpus generator
//       of src/analysis/corpus.h) and cross-check every verdict against a
//       real engine run: a "deadlock-free" verdict must never precede an
//       engine Status error. Exit 1 on the first false-safe verdict.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/corpus.h"
#include "src/analysis/plan_analyzer.h"
#include "src/analysis/trace_analyzer.h"
#include "src/api/nvx.h"
#include "src/net/wire.h"
#include "src/nxe/engine.h"
#include "src/workload/workload.h"

namespace {

using bunshin::analysis::AnalysisReport;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] <plan-file>...   analyze wire-plan files\n"
               "       %s --lint <plan-file>...       ok_* must be clean, bad_* must error\n"
               "       %s --write-corpus <dir>        regenerate the fixture corpus\n"
               "       %s --seeded N                  cross-check N seeded trace cases\n",
               argv0, argv0, argv0, argv0);
}

bunshin::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return bunshin::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Analyzes one plan file. Returns the report, or nullopt (with a printed
// message) when the file cannot be read or decoded — which counts as
// "carries errors" for exit-code purposes: the executor rejects such a plan
// at its decode stage, before the analyzer even runs.
std::optional<AnalysisReport> AnalyzeFile(const std::string& path,
                                          std::optional<uint64_t> seed) {
  bunshin::StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) {
    std::printf("%s: %s\n", path.c_str(), bytes.status().ToString().c_str());
    return std::nullopt;
  }
  bunshin::StatusOr<bunshin::api::VariantPlan> plan = bunshin::net::DecodeVariantPlan(*bytes);
  if (!plan.ok()) {
    std::printf("%s: decode failed: %s\n", path.c_str(), plan.status().ToString().c_str());
    return std::nullopt;
  }
  return bunshin::analysis::AnalyzePlan(*plan, seed);
}

void PrintReport(const std::string& path, const AnalysisReport& report) {
  std::printf("%s: %s\n", path.c_str(), report.Summary().c_str());
  const std::string rendered = report.Render();
  if (!rendered.empty()) {
    std::printf("%s", rendered.c_str());
  }
}

int RunAnalyze(const std::vector<std::string>& files, std::optional<uint64_t> seed) {
  size_t failed = 0;
  for (const std::string& path : files) {
    std::optional<AnalysisReport> report = AnalyzeFile(path, seed);
    if (!report.has_value()) {
      ++failed;
      continue;
    }
    PrintReport(path, *report);
    if (!report->ok()) {
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}

int RunLint(const std::vector<std::string>& files) {
  size_t violations = 0;
  for (const std::string& path : files) {
    const std::string base = std::filesystem::path(path).filename().string();
    const bool expect_clean = base.rfind("ok_", 0) == 0;
    const bool expect_errors = base.rfind("bad_", 0) == 0;
    if (!expect_clean && !expect_errors) {
      std::printf("lint FAIL %s: no expectation prefix (name fixtures ok_* or bad_*)\n",
                  path.c_str());
      ++violations;
      continue;
    }
    std::optional<AnalysisReport> report = AnalyzeFile(path, std::nullopt);
    // Undecodable counts as rejected: fine for bad_*, a violation for ok_*.
    const bool has_errors = !report.has_value() || !report->ok();
    if (has_errors == expect_errors) {
      std::printf("lint ok   %s: %s\n", path.c_str(),
                  report.has_value() ? report->Summary().c_str() : "rejected at decode");
    } else {
      std::printf("lint FAIL %s: expected %s but got %s\n", path.c_str(),
                  expect_clean ? "a clean report" : "errors",
                  report.has_value() ? report->Summary().c_str() : "a decode failure");
      if (report.has_value()) {
        std::printf("%s", report->Render().c_str());
      }
      ++violations;
    }
  }
  std::printf("lint: %zu file(s), %zu violation(s)\n", files.size(), violations);
  return violations == 0 ? 0 : 1;
}

// --- fixture corpus ----------------------------------------------------------

bunshin::StatusOr<bunshin::api::VariantPlan> FixturePlan(const char* benchmark,
                                                         bunshin::api::DistributionStrategy
                                                             strategy,
                                                         size_t n) {
  const bunshin::workload::BenchmarkSpec* spec = bunshin::workload::FindBenchmark(benchmark);
  if (spec == nullptr) {
    return bunshin::NotFound(std::string("no benchmark named ") + benchmark);
  }
  bunshin::api::NvxBuilder builder;
  builder.Benchmark(*spec).Variants(n).Seed(7);
  switch (strategy) {
    case bunshin::api::DistributionStrategy::kNone:
      break;
    case bunshin::api::DistributionStrategy::kCheck:
      builder.DistributeChecks(bunshin::san::SanitizerId::kASan);
      break;
    case bunshin::api::DistributionStrategy::kSanitizer:
      builder.DistributeSanitizers({bunshin::san::SanitizerId::kASan,
                                    bunshin::san::SanitizerId::kMSan,
                                    bunshin::san::SanitizerId::kUBSan});
      break;
    case bunshin::api::DistributionStrategy::kUbsanSub:
      builder.DistributeUbsanSubSanitizers();
      break;
  }
  return builder.PlanVariants();
}

struct Fixture {
  std::string name;  // ok_*.plan / bad_*.plan — the lint expectation
  bunshin::api::VariantPlan plan;
};

bunshin::StatusOr<std::vector<Fixture>> BuildFixtures() {
  std::vector<Fixture> fixtures;
  using bunshin::api::DistributionStrategy;

  auto add = [&fixtures](const char* name,
                         bunshin::StatusOr<bunshin::api::VariantPlan> plan) -> bunshin::Status {
    if (!plan.ok()) {
      return plan.status();
    }
    fixtures.push_back({name, std::move(*plan)});
    return bunshin::Status::Ok();
  };

  // Well-formed plans, one per distribution strategy plus a server target.
  bunshin::Status status = add("ok_none_clones.plan",
                               FixturePlan("bzip2", DistributionStrategy::kNone, 3));
  if (!status.ok()) return status;
  status = add("ok_check_asan.plan", FixturePlan("mcf", DistributionStrategy::kCheck, 4));
  if (!status.ok()) return status;
  status = add("ok_sanitizer_groups.plan",
               FixturePlan("bzip2", DistributionStrategy::kSanitizer, 3));
  if (!status.ok()) return status;
  status = add("ok_ubsan_subs.plan", FixturePlan("mcf", DistributionStrategy::kUbsanSub, 4));
  if (!status.ok()) return status;
  {
    bunshin::api::NvxBuilder builder;
    builder.Server(bunshin::workload::ServerSpec{}).Variants(2).Seed(7);
    status = add("ok_server_clones.plan", builder.PlanVariants());
    if (!status.ok()) return status;
  }

  // Hostile mutants of the well-formed plans. Every mutant still decodes as
  // a syntactically valid wire plan — these are exactly the plans only the
  // analyzer (not the wire decoder) can reject. (Copies, not references:
  // the push_backs below reallocate `fixtures`.)
  const bunshin::api::VariantPlan ok_none = fixtures[0].plan;
  const bunshin::api::VariantPlan ok_check = fixtures[1].plan;
  const bunshin::api::VariantPlan ok_san = fixtures[2].plan;

  {  // coverage/gap: one protected function silently dropped from its subset
    bunshin::api::VariantPlan mutant = ok_check;
    for (auto& subset : mutant.check_plan->protected_functions) {
      if (!subset.empty()) {
        subset.pop_back();
        break;
      }
    }
    fixtures.push_back({"bad_coverage_gap.plan", std::move(mutant)});
  }
  {  // coverage/overlap: one function protected by two variants
    bunshin::api::VariantPlan mutant = ok_check;
    auto& subsets = mutant.check_plan->protected_functions;
    if (subsets.size() >= 2 && !subsets[0].empty()) {
      subsets[1].push_back(subsets[0].front());
    }
    fixtures.push_back({"bad_coverage_overlap.plan", std::move(mutant)});
  }
  {  // coverage/unknown-function: a subset protects a name nobody profiled
    bunshin::api::VariantPlan mutant = ok_check;
    mutant.check_plan->protected_functions[0].push_back("__no_such_function");
    fixtures.push_back({"bad_coverage_unknown.plan", std::move(mutant)});
  }
  {  // coverage/group-conflict: ASan and MSan forced into one variant (§3.1)
    bunshin::api::VariantPlan mutant = ok_san;
    mutant.sanitizer_groups.clear();
    mutant.sanitizer_groups.push_back({"asan", "msan"});
    mutant.sanitizer_groups.push_back({"ubsan"});
    fixtures.push_back({"bad_group_conflict.plan", std::move(mutant)});
  }
  {  // plan/injection-range: a detection spliced into a variant that is absent
    bunshin::api::VariantPlan mutant = ok_none;
    mutant.detect_injections.push_back({99, "__asan_report_load"});
    fixtures.push_back({"bad_injection_range.plan", std::move(mutant)});
  }
  {  // liveness/ring-capacity: selective lockstep with no ring to run ahead in
    bunshin::api::VariantPlan mutant = ok_none;
    mutant.engine_config.mode = bunshin::nxe::LockstepMode::kSelective;
    mutant.engine_config.ring_capacity = 0;
    fixtures.push_back({"bad_ring_zero.plan", std::move(mutant)});
  }
  {  // plan/compute-scale: a variant claiming a non-positive virtual clock
    bunshin::api::VariantPlan mutant = ok_none;
    mutant.specs.back().compute_scale = 0.0;
    fixtures.push_back({"bad_compute_scale.plan", std::move(mutant)});
  }
  {  // plan/dual-target: both a benchmark and a server — trace construction
     // would be ambiguous
    bunshin::api::VariantPlan mutant = ok_none;
    mutant.server = bunshin::workload::ServerSpec{};
    fixtures.push_back({"bad_dual_target.plan", std::move(mutant)});
  }
  return fixtures;
}

int RunWriteCorpus(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "nvx_analyze: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  bunshin::StatusOr<std::vector<Fixture>> fixtures = BuildFixtures();
  if (!fixtures.ok()) {
    std::fprintf(stderr, "nvx_analyze: fixture planning failed: %s\n",
                 fixtures.status().ToString().c_str());
    return 1;
  }
  for (const Fixture& fixture : *fixtures) {
    // Self-check: a fixture that does not satisfy its own ok_/bad_ name would
    // poison every CI lint run that consumes the corpus.
    const AnalysisReport report = bunshin::analysis::AnalyzePlan(fixture.plan);
    const bool expect_errors = fixture.name.rfind("bad_", 0) == 0;
    if (report.ok() == expect_errors) {
      std::fprintf(stderr, "nvx_analyze: fixture %s violates its expectation: %s\n",
                   fixture.name.c_str(), report.Summary().c_str());
      return 1;
    }
    const std::string path = dir + "/" + fixture.name;
    const std::string bytes = bunshin::net::EncodeVariantPlan(fixture.plan);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "nvx_analyze: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes, %s)\n", path.c_str(), bytes.size(),
                report.Summary().c_str());
  }
  return 0;
}

// --- seeded trace-corpus cross-check ----------------------------------------

int RunSeeded(size_t n_cases) {
  size_t analyzer_unsafe = 0;
  size_t engine_errors = 0;
  size_t false_safe = 0;
  for (size_t seed = 0; seed < n_cases; ++seed) {
    const bunshin::analysis::RandomCase c = bunshin::analysis::GenerateCase(seed);
    AnalysisReport report;
    bunshin::analysis::AnalyzeTraces(c.config, c.variants, &report);
    const bunshin::nxe::Engine engine(c.config);
    const bunshin::StatusOr<bunshin::nxe::SyncReport> run = engine.Run(c.variants);
    if (!report.deadlock_free()) {
      ++analyzer_unsafe;
    }
    if (!run.ok()) {
      ++engine_errors;
      if (report.deadlock_free()) {
        // The one verdict that must never happen: the analyzer proved the
        // session safe and the engine then failed. Print everything.
        ++false_safe;
        std::printf("FALSE-SAFE seed %zu (%s): engine says %s\n", seed, c.label.c_str(),
                    run.status().ToString().c_str());
        std::printf("%s", report.Render().c_str());
      }
    }
  }
  std::printf("seeded corpus: %zu case(s), %zu analyzer-unsafe, %zu engine-error(s), "
              "%zu false-safe verdict(s)\n",
              n_cases, analyzer_unsafe, engine_errors, false_safe);
  return false_safe == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool lint = false;
  std::optional<uint64_t> seed;
  std::string corpus_dir;
  long seeded = -1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--write-corpus") == 0 && has_value) {
      corpus_dir = argv[++i];
    } else if (std::strcmp(arg, "--seeded") == 0 && has_value) {
      seeded = std::atol(argv[++i]);
    } else if (arg[0] == '-') {
      Usage(argv[0]);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (!corpus_dir.empty()) {
    return RunWriteCorpus(corpus_dir);
  }
  if (seeded >= 0) {
    return RunSeeded(static_cast<size_t>(seeded));
  }
  if (files.empty()) {
    Usage(argv[0]);
    return 2;
  }
  return lint ? RunLint(files) : RunAnalyze(files, seed);
}
