// nvx_executord: the standalone executor daemon of the multi-host execution
// plane. Listens for framed RunRequest messages (src/net/wire.h), rebuilds
// trace backends from received plans (caching decoded plans by their wire
// CacheKey), runs the requested shard members on a thread pool, and replies
// with PartialReports plus occupancy.
//
//   nvx_executord --port 7001 --workers 4 --pin
//
// --port 0 (the default) picks an ephemeral port; the chosen port is printed
// either way, as the line "nvx_executord listening on port <p>", which the
// smoke harness parses. The daemon serves until killed.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/net/executor.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--workers N] [--pin] [--plan-cache C] [--pool-capacity E]\n"
               "  --port P           TCP port to listen on (0 = ephemeral; default 0)\n"
               "  --workers N        thread-pool size (0 = hardware concurrency; default 0)\n"
               "  --pin              pin workers one per physical core (topology placement\n"
               "                     order; best-effort — dedicated executor hosts only)\n"
               "  --plan-cache C     decoded-plan cache capacity (default 64)\n"
               "  --pool-capacity E  idle engine states pooled per plan for the warm-run\n"
               "                     path (0 = disable pooling; default 8)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  bunshin::net::ExecutorOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--port") == 0 && has_value) {
      port = std::atol(argv[++i]);
    } else if (std::strcmp(arg, "--workers") == 0 && has_value) {
      options.n_workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(arg, "--pin") == 0) {
      options.pin_threads = true;
    } else if (std::strcmp(arg, "--plan-cache") == 0 && has_value) {
      options.plan_cache_capacity = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(arg, "--pool-capacity") == 0 && has_value) {
      options.engine_pool_capacity = static_cast<size_t>(std::atol(argv[++i]));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "nvx_executord: --port must be in [0, 65535]\n");
    return 2;
  }

  bunshin::net::ExecutorServer server(options);
  bunshin::Status status = server.ListenTcp(static_cast<uint16_t>(port));
  if (!status.ok()) {
    std::fprintf(stderr, "nvx_executord: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("nvx_executord listening on port %u\n", server.port());
  std::fflush(stdout);

  // Serve until killed: accepting and serving happen on background threads;
  // park this one. (SIGTERM/SIGINT default to process exit, which is the
  // intended shutdown path — the fleet treats an executor as stateless.)
  sigset_t set;
  sigemptyset(&set);
  int sig = 0;
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  sigwait(&set, &sig);
  return 0;
}
