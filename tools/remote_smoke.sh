#!/usr/bin/env bash
# Multi-host smoke test: two nvx_executord processes on ephemeral localhost
# ports, a mixed batch of remote sessions driven through them, and a kill -9
# of one executor mid-batch followed by a restart. The batch must still
# complete with every verdict correct — the dispatcher retries transport
# failures on the survivor and re-probes the restarted executor.
#
#   $ tools/remote_smoke.sh [build-dir]     # default build dir: ./build
set -u

BUILD_DIR="${1:-build}"
EXECUTORD="$BUILD_DIR/tools/nvx_executord"
CLIENT="$BUILD_DIR/examples/remote_server"
WORKDIR="$(mktemp -d)"
PIDS=()

fail() {
  echo "remote_smoke: FAIL: $*" >&2
  exit 1
}

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

[ -x "$EXECUTORD" ] || fail "$EXECUTORD not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

# Start an executor on an ephemeral port; parse the port it announces.
# $1: log file. Sets STARTED_PID and STARTED_PORT.
start_executor() {
  local log="$1"
  "$EXECUTORD" --port 0 --workers 4 --pool-capacity 8 >"$log" 2>&1 &
  STARTED_PID=$!
  disown "$STARTED_PID"  # quiet bash's "Killed" notice when cleanup reaps it
  STARTED_PORT=""
  for _ in $(seq 1 50); do
    STARTED_PORT="$(sed -n 's/^nvx_executord listening on port \([0-9]*\)$/\1/p' "$log")"
    [ -n "$STARTED_PORT" ] && break
    kill -0 "$STARTED_PID" 2>/dev/null || fail "executor died at startup: $(cat "$log")"
    sleep 0.1
  done
  [ -n "$STARTED_PORT" ] || fail "executor did not announce a port: $(cat "$log")"
}

start_executor "$WORKDIR/exec1.log"
PID1=$STARTED_PID; PORT1=$STARTED_PORT; PIDS+=("$PID1")
start_executor "$WORKDIR/exec2.log"
PID2=$STARTED_PID; PORT2=$STARTED_PORT; PIDS+=("$PID2")
echo "remote_smoke: executors up on ports $PORT1 (pid $PID1) and $PORT2 (pid $PID2)"

# The client paces ~60 runs over several seconds; kill executor 2 a little
# into the batch, then restart it (on a fresh port 2 would not be seen by the
# already-running client, so the restart must reuse the same port — pass it
# explicitly this time).
"$CLIENT" "$PORT1" "$PORT2" >"$WORKDIR/client.log" 2>&1 &
CLIENT_PID=$!
PIDS+=("$CLIENT_PID")

sleep 2
echo "remote_smoke: kill -9 executor 2 (pid $PID2) mid-batch"
kill -9 "$PID2" 2>/dev/null || fail "could not kill executor 2"
wait "$PID2" 2>/dev/null

sleep 2
# The restart exercises the opposite pooling configuration: a fleet mixing
# pooled and pool-disabled executors must still produce identical verdicts.
"$EXECUTORD" --port "$PORT2" --workers 4 --pool-capacity 0 >"$WORKDIR/exec2b.log" 2>&1 &
PID2B=$!
disown "$PID2B"
PIDS+=("$PID2B")
for _ in $(seq 1 50); do
  grep -q "listening on port $PORT2" "$WORKDIR/exec2b.log" && break
  kill -0 "$PID2B" 2>/dev/null || fail "restarted executor died: $(cat "$WORKDIR/exec2b.log")"
  sleep 0.1
done
grep -q "listening on port $PORT2" "$WORKDIR/exec2b.log" \
  || fail "restarted executor did not re-bind port $PORT2"
echo "remote_smoke: executor 2 restarted on port $PORT2 (pid $PID2B)"

wait "$CLIENT_PID"
CLIENT_RC=$?
cat "$WORKDIR/client.log"
[ "$CLIENT_RC" -eq 0 ] || fail "client exited $CLIENT_RC"

# The restarted executor must have served traffic after coming back — the
# cooldown-probe path, not just the survivor carrying the whole tail.
kill -0 "$PID2B" 2>/dev/null || fail "restarted executor not running at batch end"

echo "remote_smoke: PASS (batch survived kill -9 + restart of one executor)"
